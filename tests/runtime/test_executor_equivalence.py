"""Parallel executor returns results bit-identical to serial (every algorithm).

The determinism contract (``repro.runtime.executor``): both executors walk
active vertices in canonical graph order, receivers restore serial delivery
order by sender sequence, aggregates fold in (vertex, call) order, and
per-shard modeled compute sums in the same order serial would use.  These
tests hold the contract across the whole algorithm matrix.
"""

import os

import pytest

from repro.algorithms import ALL_ALGORITHMS, run_algorithm
from repro.core.engine import IcmProgramError, IntervalCentricEngine
from repro.obs.observers import InMemoryEvents
from repro.core.interval import Interval
from repro.core.program import IntervalProgram
from repro.core.tracing import ExecutionTracer
from repro.datasets import transit_graph
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.executor import (
    ParallelExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.runtime.partitioner import PARTITIONER_KINDS

PARALLEL = {"executor": "parallel", "executor_processes": 2}

#: Metric fields that must match *exactly* between the executors.
EXACT_FIELDS = (
    "supersteps",
    "compute_calls",
    "scatter_calls",
    "messages_sent",
    "system_messages",
    "message_bytes",
    "local_messages",
    "remote_messages",
    "warp_calls",
    "warp_suppressed_vertices",
    "combiner_reductions",
    "peak_inflight_messages",
    "modeled_makespan",  # bitwise: same floats folded in the same order
    "modeled_compute_time",
    "messaging_time",
    "barrier_time",
)


def _partitions(result):
    """Comparable snapshot of a run's per-vertex partitioned states."""
    states = result.components if hasattr(result, "components") else result.states
    return {vid: list(state) for vid, state in states.items()}


def _run(algorithm, observe=None, **icm_options):
    # The serial reference is pinned explicitly so the comparison stays
    # meaningful under REPRO_EXECUTOR=parallel test sweeps.
    return run_algorithm(
        algorithm, "GRAPHITE", transit_graph(),
        cluster=SimulatedCluster(5), graph_name="transit",
        icm_options=icm_options or {"executor": "serial"},
        observe=observe,
    )


@pytest.mark.parametrize("topology", ("star", "peer"))
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_parallel_matches_serial(algorithm, topology):
    serial_events, parallel_events = InMemoryEvents(), InMemoryEvents()
    serial = _run(algorithm, observe=serial_events)
    parallel = _run(
        algorithm, observe=parallel_events, exchange=topology, **PARALLEL
    )

    assert _partitions(serial.result) == _partitions(parallel.result)
    if hasattr(serial.result, "aggregates"):
        assert serial.result.aggregates == parallel.result.aggregates
    for fld in EXACT_FIELDS:
        assert getattr(serial.metrics, fld) == getattr(parallel.metrics, fld), fld
    # Same logical event stream from both executors — wall-clock facts
    # excluded by logical().  Fault-plan sweeps replay supersteps on the
    # parallel side only, so the sequence check is skipped there.
    assert serial_events.records, "runs must emit events when observed"
    if not os.environ.get("REPRO_FAULT_PLAN"):
        assert serial_events.logical() == parallel_events.logical()


@pytest.mark.parametrize("topology", ("star", "peer"))
@pytest.mark.parametrize("algorithm", ("BFS", "SSSP", "PR"))
@pytest.mark.parametrize("partitioner", PARTITIONER_KINDS)
def test_parallel_matches_serial_under_every_partitioner(
    algorithm, partitioner, topology
):
    """Placement moves messages between workers, never changes results.

    The executors must stay bit-identical whichever partitioner shards the
    graph — including the greedy ones, whose shard sizes are deliberately
    uneven — under either exchange topology, and all must agree on the
    byte-level locality split.
    """
    serial = _run(algorithm, executor="serial", partitioner=partitioner)
    parallel = _run(
        algorithm, partitioner=partitioner, exchange=topology, **PARALLEL
    )

    assert _partitions(serial.result) == _partitions(parallel.result)
    for fld in EXACT_FIELDS + ("local_message_bytes", "remote_message_bytes"):
        assert getattr(serial.metrics, fld) == getattr(parallel.metrics, fld), fld
    assert serial.metrics.partition_edge_cut == parallel.metrics.partition_edge_cut


def test_executor_recorded_in_metrics():
    assert _run("BFS").metrics.executor == "serial"
    assert _run("BFS", **PARALLEL).metrics.executor == "parallel"


def test_parallel_worker_wall_times_per_process():
    metrics = _run("SSSP", **PARALLEL).metrics
    for step in metrics.supersteps_detail:
        assert len(step.worker_wall_times) == 2


def test_resolve_executor(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    monkeypatch.delenv("REPRO_EXECUTOR_PROCESSES", raising=False)
    assert resolve_executor(None).name == "serial"
    assert resolve_executor("serial").name == "serial"
    parallel = resolve_executor("parallel", 3)
    assert parallel.name == "parallel" and parallel.processes == 3
    inst = SerialExecutor()
    assert resolve_executor(inst) is inst
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor("threads")


def test_resolve_executor_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "parallel")
    monkeypatch.setenv("REPRO_EXECUTOR_PROCESSES", "2")
    executor = resolve_executor(None)
    assert isinstance(executor, ParallelExecutor)
    assert executor.processes == 2


def test_tracer_rejects_parallel_executor():
    with pytest.raises(ValueError, match="serial"):
        resolve_executor("parallel", tracer=ExecutionTracer())


def test_tracer_overrides_env_forced_parallel(monkeypatch):
    # REPRO_EXECUTOR=parallel is a sweep-wide default, not an explicit ask:
    # traced runs fall back to serial instead of failing.
    monkeypatch.setenv("REPRO_EXECUTOR", "parallel")
    assert resolve_executor(None, tracer=ExecutionTracer()).name == "serial"


class _Exploding(IntervalProgram):
    """Raises inside compute on a specific vertex — in the worker process."""

    name = "boom"

    def init(self, ctx):
        ctx.set_state(Interval(0, 4), 0)

    def compute(self, ctx, interval, state, messages):
        if ctx.superstep >= 2:
            raise RuntimeError("kaboom in worker")
        ctx.set_state(interval, 1)

    def scatter(self, ctx, edge, interval, state):
        return [(interval, state)]


def test_worker_error_surfaces_as_program_error():
    engine = IntervalCentricEngine(
        transit_graph(), _Exploding(), cluster=SimulatedCluster(5),
        executor="parallel", executor_processes=2,
    )
    with pytest.raises(IcmProgramError, match="compute"):
        engine.run()
