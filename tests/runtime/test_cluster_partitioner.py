"""Tests for the simulated cluster, partitioners and the cost model."""

import pytest

from repro.core.messages import message
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import NetworkModel, RunMetrics
from repro.runtime.partitioner import HashPartitioner, RangePartitioner


class TestHashPartitioner:
    def test_deterministic(self):
        p1 = HashPartitioner(8)
        p2 = HashPartitioner(8)
        for vid in ["a", "b", 42, ("x", 3)]:
            assert p1.worker_of(vid) == p2.worker_of(vid)

    def test_range(self):
        p = HashPartitioner(4)
        assert all(0 <= p.worker_of(f"v{i}") < 4 for i in range(100))

    def test_roughly_balanced(self):
        p = HashPartitioner(4)
        load = [0] * 4
        for i in range(2000):
            load[p.worker_of(f"v{i}")] += 1
        assert min(load) > 300

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_contiguous_assignment(self):
        p = RangePartitioner(3, [f"v{i:03d}" for i in range(9)])
        assert p.worker_of("v000") == 0
        assert p.worker_of("v008") == 2

    def test_unknown_vertex(self):
        p = RangePartitioner(2, ["a"])
        with pytest.raises(KeyError):
            p.worker_of("zzz")


class TestSimulatedCluster:
    def test_message_delivery_at_barrier(self):
        cluster = SimulatedCluster(2)
        metrics = RunMetrics()
        inboxes = cluster.begin_superstep(1)
        assert inboxes == {}  # nothing sent yet
        cluster.send("a", "b", message(0, 1, 5), metrics)
        assert cluster.has_pending_messages()
        cluster.end_superstep(metrics, messaging_time=0.0)
        inboxes = cluster.begin_superstep(2)
        assert [m.value for m in inboxes["b"]] == [5]
        # Delivered messages are consumed: next superstep starts empty.
        cluster.end_superstep(metrics, messaging_time=0.0)
        assert cluster.begin_superstep(3) == {}

    def test_local_vs_remote_accounting(self):
        cluster = SimulatedCluster(4)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        vids = [f"v{i}" for i in range(40)]
        for vid in vids:
            cluster.send("v0", vid, message(0, 1, 1), metrics)
        assert metrics.local_messages + metrics.remote_messages == 40
        assert metrics.remote_messages > 0
        home = cluster.worker_of("v0")
        expected_local = sum(1 for v in vids if cluster.worker_of(v) == home)
        assert metrics.local_messages == expected_local

    def test_system_messages_counted_separately(self):
        cluster = SimulatedCluster(2)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.send("a", "b", message(0, 1, 1), metrics, system=True)
        cluster.send("a", "b", message(0, 1, 1), metrics)
        assert metrics.messages_sent == 1
        assert metrics.system_messages == 1
        assert metrics.total_messages == 2

    def test_modeled_makespan_accumulates(self):
        cluster = SimulatedCluster(2, network=NetworkModel(barrier_latency_s=0.01))
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.add_compute_time("a", 0.5)
        cluster.end_superstep(metrics, messaging_time=0.0)
        assert metrics.modeled_makespan >= 0.51
        assert metrics.barrier_time == pytest.approx(0.01)

    def test_worker_load(self):
        cluster = SimulatedCluster(4)
        load = cluster.worker_load([f"v{i}" for i in range(100)])
        assert sum(load) == 100

    def test_explicit_size_override(self):
        cluster = SimulatedCluster(2)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.send("a", "b", "opaque", metrics, size=17)
        assert metrics.message_bytes == 17

    def test_reset_clears_queues(self):
        cluster = SimulatedCluster(2)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.send("a", "b", message(0, 1, 1), metrics)
        cluster.reset()
        assert not cluster.has_pending_messages()


class TestNetworkModel:
    def test_transfer_time_scales_with_bytes(self):
        net = NetworkModel(bandwidth_bytes_per_s=1000, per_message_overhead_s=0.0)
        assert net.transfer_time(2000, 0) == pytest.approx(2.0)

    def test_per_message_overhead(self):
        net = NetworkModel(per_message_overhead_s=0.001)
        assert net.transfer_time(0, 100) == pytest.approx(0.1)


class TestMetricsMerge:
    def test_merge_accumulates(self):
        a = RunMetrics(compute_calls=5, messages_sent=3, makespan=1.0)
        b = RunMetrics(compute_calls=2, messages_sent=4, makespan=0.5,
                       peak_inflight_messages=9)
        a.merge(b)
        assert a.compute_calls == 7
        assert a.messages_sent == 7
        assert a.makespan == pytest.approx(1.5)
        assert a.peak_inflight_messages == 9

    def test_summary_string(self):
        m = RunMetrics(platform="X", algorithm="Y", graph="Z")
        assert "X/Y/Z" in m.summary()
