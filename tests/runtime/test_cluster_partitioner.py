"""Tests for the simulated cluster, partitioners and the cost model."""

import pytest

from repro import api
from repro.algorithms.td.sssp import TemporalSSSP
from repro.core.config import _PARTITIONER_KINDS, EngineConfig
from repro.core.engine import IntervalCentricEngine
from repro.core.messages import message
from repro.datasets import transit_graph
from repro.obs.observers import InMemoryEvents
from repro.runtime.checkpoint import CheckpointError
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import NetworkModel, RunMetrics
from repro.runtime.partitioner import (
    PARTITIONER_KINDS,
    GreedyEdgeCutPartitioner,
    HashPartitioner,
    RangePartitioner,
    build_partitioner,
    partitioner_fingerprint,
)


class TestHashPartitioner:
    def test_deterministic(self):
        p1 = HashPartitioner(8)
        p2 = HashPartitioner(8)
        for vid in ["a", "b", 42, ("x", 3)]:
            assert p1.worker_of(vid) == p2.worker_of(vid)

    def test_range(self):
        p = HashPartitioner(4)
        assert all(0 <= p.worker_of(f"v{i}") < 4 for i in range(100))

    def test_roughly_balanced(self):
        p = HashPartitioner(4)
        load = [0] * 4
        for i in range(2000):
            load[p.worker_of(f"v{i}")] += 1
        assert min(load) > 300

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_contiguous_assignment(self):
        p = RangePartitioner(3, [f"v{i:03d}" for i in range(9)])
        assert p.worker_of("v000") == 0
        assert p.worker_of("v008") == 2

    def test_unknown_vertex(self):
        p = RangePartitioner(2, ["a"])
        with pytest.raises(KeyError):
            p.worker_of("zzz")


class TestPartitionerSelection:
    def test_config_kinds_match_runtime_kinds(self):
        # config.py duplicates the tuple to stay import-cycle-free; this
        # pin is the promise referenced next to that duplicate.
        assert _PARTITIONER_KINDS == PARTITIONER_KINDS

    def test_build_partitioner_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown partitioner kind"):
            build_partitioner("metis", 4, transit_graph())

    def test_every_kind_builds_and_fingerprints(self):
        g = transit_graph()
        seen = set()
        for kind in PARTITIONER_KINDS:
            p = build_partitioner(kind, 3, g)
            assert p.kind == kind
            assert p.num_workers == 3
            fp = partitioner_fingerprint(p)
            assert fp and fp not in seen
            seen.add(fp)

    def test_fingerprint_falls_back_to_repr(self):
        class Foreign:
            def worker_of(self, vid):
                return 0

            def __repr__(self):
                return "Foreign()"

        assert partitioner_fingerprint(Foreign()) == "Foreign()"

    def test_config_kind_installs_partitioner(self):
        g = transit_graph()
        engine = api.build_engine(
            g, TemporalSSSP("A"), cluster=SimulatedCluster(4),
            options={"partitioner": "greedy"},
        )
        assert engine.cluster.partitioner.kind == "greedy"

    def test_explicit_cluster_partitioner_beats_env_kind(self):
        # REPRO_PARTITIONER is a sweep-wide default; a partitioner the
        # caller installed on the cluster must survive it.
        g = transit_graph()
        mine = RangePartitioner(4, g.vertex_ids())
        config = EngineConfig.from_env({"REPRO_PARTITIONER": "greedy"})
        engine = IntervalCentricEngine(
            g, TemporalSSSP("A"),
            cluster=SimulatedCluster(4, partitioner=mine), config=config,
        )
        assert engine.cluster.partitioner is mine

    def test_env_kind_applies_to_default_cluster(self):
        config = EngineConfig.from_env({"REPRO_PARTITIONER": "range"})
        engine = IntervalCentricEngine(
            transit_graph(), TemporalSSSP("A"),
            cluster=SimulatedCluster(4), config=config,
        )
        assert engine.cluster.partitioner.kind == "range"

    def test_explicit_config_kind_beats_cluster_partitioner(self):
        g = transit_graph()
        engine = api.build_engine(
            g, TemporalSSSP("A"),
            cluster=SimulatedCluster(4, partitioner=HashPartitioner(4, seed=9)),
            options={"partitioner": "greedy"},
        )
        assert engine.cluster.partitioner.kind == "greedy"


class TestPartitionObservability:
    def test_partition_stats_shape(self):
        g = transit_graph()
        cluster = SimulatedCluster(3)
        stats = cluster.partition_stats(g)
        assert sum(stats["vertex_load"]) == g.num_vertices
        assert 0.0 <= stats["edge_cut"] <= 1.0
        assert stats["imbalance"] >= 1.0
        # Cut edges are billed to both endpoint workers.
        n_edges = sum(1 for _ in g.edges())
        cut_edges = round(stats["edge_cut"] * n_edges)
        assert sum(stats["edge_load"]) == n_edges + cut_edges

    def test_partition_stats_single_worker(self):
        stats = SimulatedCluster(1).partition_stats(transit_graph())
        assert stats["edge_cut"] == 0.0
        assert stats["imbalance"] == 1.0

    def test_run_reports_partition_metrics_and_events(self):
        events = InMemoryEvents()
        result = api.run(
            transit_graph(), TemporalSSSP("A"),
            cluster=SimulatedCluster(4),
            options={"partitioner": "greedy", "checkpoint_every": 0},
            observe=events,
        )
        metrics = result.metrics
        assert metrics.partition_edge_cut > 0.0
        assert metrics.partition_imbalance >= 1.0
        assert (
            metrics.local_message_bytes + metrics.remote_message_bytes
            == metrics.message_bytes
        )
        start = events.of_type("run_start")[0]["data"]
        assert start["partitioner"].startswith("greedy:")
        assert sum(start["worker_vertex_load"]) == transit_graph().num_vertices
        assert start["partition_edge_cut"] == metrics.partition_edge_cut


class TestCheckpointPartitionerGuard:
    def test_resume_under_different_partitioner_refused(self, tmp_path):
        g = transit_graph()
        api.run(
            g, TemporalSSSP("A"), cluster=SimulatedCluster(4),
            options={
                "partitioner": "hash",
                "checkpoint_every": 1,
                "checkpoint_dir": str(tmp_path),
            },
        )
        with pytest.raises(CheckpointError) as err:
            api.run(
                g, TemporalSSSP("A"), cluster=SimulatedCluster(4),
                options={
                    "partitioner": "greedy",
                    "checkpoint_every": 0,
                },
                resume_from=str(tmp_path),
            )
        # The refusal must name both placements so the operator can see
        # exactly which assignment the checkpoint was sharded under.
        message = str(err.value)
        assert "hash:w=4" in message
        assert partitioner_fingerprint(
            GreedyEdgeCutPartitioner(4, g)
        ) in message

    def test_resume_under_same_partitioner_succeeds(self, tmp_path):
        g = transit_graph()
        options = {
            "partitioner": "greedy",
            "checkpoint_every": 1,
            "checkpoint_dir": str(tmp_path),
        }
        full = api.run(g, TemporalSSSP("A"),
                       cluster=SimulatedCluster(4), options=options)
        resumed = api.run(
            g, TemporalSSSP("A"), cluster=SimulatedCluster(4),
            options={"partitioner": "greedy", "checkpoint_every": 0},
            resume_from=str(tmp_path),
        )
        assert {v: list(s) for v, s in full.states.items()} == \
               {v: list(s) for v, s in resumed.states.items()}


class TestSimulatedCluster:
    def test_message_delivery_at_barrier(self):
        cluster = SimulatedCluster(2)
        metrics = RunMetrics()
        inboxes = cluster.begin_superstep(1)
        assert inboxes == {}  # nothing sent yet
        cluster.send("a", "b", message(0, 1, 5), metrics)
        assert cluster.has_pending_messages()
        cluster.end_superstep(metrics, messaging_time=0.0)
        inboxes = cluster.begin_superstep(2)
        assert [m.value for m in inboxes["b"]] == [5]
        # Delivered messages are consumed: next superstep starts empty.
        cluster.end_superstep(metrics, messaging_time=0.0)
        assert cluster.begin_superstep(3) == {}

    def test_local_vs_remote_accounting(self):
        cluster = SimulatedCluster(4)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        vids = [f"v{i}" for i in range(40)]
        for vid in vids:
            cluster.send("v0", vid, message(0, 1, 1), metrics)
        assert metrics.local_messages + metrics.remote_messages == 40
        assert metrics.remote_messages > 0
        home = cluster.worker_of("v0")
        expected_local = sum(1 for v in vids if cluster.worker_of(v) == home)
        assert metrics.local_messages == expected_local

    def test_system_messages_counted_separately(self):
        cluster = SimulatedCluster(2)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.send("a", "b", message(0, 1, 1), metrics, system=True)
        cluster.send("a", "b", message(0, 1, 1), metrics)
        assert metrics.messages_sent == 1
        assert metrics.system_messages == 1
        assert metrics.total_messages == 2

    def test_modeled_makespan_accumulates(self):
        cluster = SimulatedCluster(2, network=NetworkModel(barrier_latency_s=0.01))
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.add_compute_time("a", 0.5)
        cluster.end_superstep(metrics, messaging_time=0.0)
        assert metrics.modeled_makespan >= 0.51
        assert metrics.barrier_time == pytest.approx(0.01)

    def test_worker_load(self):
        cluster = SimulatedCluster(4)
        load = cluster.worker_load([f"v{i}" for i in range(100)])
        assert sum(load) == 100

    def test_explicit_size_override(self):
        cluster = SimulatedCluster(2)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.send("a", "b", "opaque", metrics, size=17)
        assert metrics.message_bytes == 17

    def test_reset_clears_queues(self):
        cluster = SimulatedCluster(2)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.send("a", "b", message(0, 1, 1), metrics)
        cluster.reset()
        assert not cluster.has_pending_messages()


class TestNetworkModel:
    def test_transfer_time_scales_with_bytes(self):
        net = NetworkModel(bandwidth_bytes_per_s=1000, per_message_overhead_s=0.0)
        assert net.transfer_time(2000, 0) == pytest.approx(2.0)

    def test_per_message_overhead(self):
        net = NetworkModel(per_message_overhead_s=0.001)
        assert net.transfer_time(0, 100) == pytest.approx(0.1)


class TestMetricsMerge:
    def test_merge_accumulates(self):
        a = RunMetrics(compute_calls=5, messages_sent=3, makespan=1.0)
        b = RunMetrics(compute_calls=2, messages_sent=4, makespan=0.5,
                       peak_inflight_messages=9)
        a.merge(b)
        assert a.compute_calls == 7
        assert a.messages_sent == 7
        assert a.makespan == pytest.approx(1.5)
        assert a.peak_inflight_messages == 9

    def test_summary_string(self):
        m = RunMetrics(platform="X", algorithm="Y", graph="Z")
        assert "X/Y/Z" in m.summary()
