"""Tests for the greedy edge-cut partitioner extension."""

import pytest

from repro.datasets import twitter, usrn
from repro.runtime.partitioner import GreedyEdgeCutPartitioner, HashPartitioner


def hash_edge_cut(graph, num_workers):
    p = HashPartitioner(num_workers)
    total = cut = 0
    for e in graph.edges():
        total += 1
        if p.worker_of(e.src) != p.worker_of(e.dst):
            cut += 1
    return cut / total


class TestGreedyPartitioner:
    def test_covers_all_vertices(self):
        g = usrn(scale=0.5)
        p = GreedyEdgeCutPartitioner(4, g)
        for vid in g.vertex_ids():
            assert 0 <= p.worker_of(vid) < 4

    def test_balanced_within_slack(self):
        g = twitter(scale=0.5)
        p = GreedyEdgeCutPartitioner(4, g, capacity_slack=1.1)
        loads = [0] * 4
        for vid in g.vertex_ids():
            loads[p.worker_of(vid)] += 1
        assert max(loads) <= 1.1 * g.num_vertices / 4 + 1

    def test_beats_hash_on_grid_locality(self):
        """On the planar road grid, greedy placement should cut far fewer
        edges than hashing."""
        g = usrn(scale=0.7)
        greedy = GreedyEdgeCutPartitioner(4, g)
        assert greedy.edge_cut(g) < 0.75 * hash_edge_cut(g, 4)

    def test_unknown_vertex(self):
        g = usrn(scale=0.4)
        p = GreedyEdgeCutPartitioner(2, g)
        with pytest.raises(KeyError):
            p.worker_of("nope")

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            GreedyEdgeCutPartitioner(0, usrn(scale=0.4))

    def test_usable_by_engine(self):
        from repro.algorithms.td.sssp import TemporalSSSP
        from repro.core.engine import IntervalCentricEngine
        from repro.core.state import states_equal_pointwise
        from repro.runtime.cluster import SimulatedCluster

        g = usrn(scale=0.4)
        source = g.vertex_ids()[0]
        hash_run = IntervalCentricEngine(
            g, TemporalSSSP(source), cluster=SimulatedCluster(4)
        ).run()
        greedy_run = IntervalCentricEngine(
            g, TemporalSSSP(source),
            cluster=SimulatedCluster(4, partitioner=GreedyEdgeCutPartitioner(4, g)),
        ).run()
        # Identical results, better message locality.
        for vid in g.vertex_ids():
            assert states_equal_pointwise(hash_run.states[vid], greedy_run.states[vid])
        assert greedy_run.metrics.remote_messages < hash_run.metrics.remote_messages
