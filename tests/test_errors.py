"""Pins the consolidated error taxonomy (`repro.errors`).

``ERROR_CODES`` is a wire-stable contract: serving clients and trace
consumers dispatch on these strings, so a code may be added but never
renamed or removed.  This test is the tripwire.
"""

import pytest

from repro import errors


EXPECTED_CODES = {
    "graph_format": "GraphFormatError",
    "cluster_lifecycle": "ClusterLifecycleError",
    "worker_died": "WorkerDiedError",
    "unrecoverable_run": "UnrecoverableRunError",
    "serve_error": "ServeError",
    "queue_full": "QueueFullError",
    "timeout": "QueryTimeoutError",
    "bad_query": "BadQueryError",
}


def test_error_code_table_is_stable():
    assert {code: name for code, (_, name) in errors.ERROR_CODES.items()} == \
           EXPECTED_CODES


def test_every_class_carries_its_code():
    for code, (_, name) in errors.ERROR_CODES.items():
        cls = getattr(errors, name)
        assert cls.code == code, f"{name}.code drifted from the table"
        assert issubclass(cls, Exception)


def test_error_code_helper():
    assert errors.error_code(errors.GraphFormatError("x")) == "graph_format"
    assert errors.error_code(RuntimeError("x")) == "error"


def test_reexports_are_the_real_classes():
    from repro.runtime.cluster import ClusterLifecycleError
    from repro.runtime.faults import UnrecoverableRunError, WorkerDiedError
    from repro.serve.errors import QueueFullError

    assert errors.ClusterLifecycleError is ClusterLifecycleError
    assert errors.WorkerDiedError is WorkerDiedError
    assert errors.UnrecoverableRunError is UnrecoverableRunError
    assert errors.QueueFullError is QueueFullError


def test_serve_wire_codes_agree():
    """The serving tier's code→class wire table is a slice of ours."""
    from repro.serve.errors import error_for_code

    for code in ("queue_full", "timeout", "bad_query", "serve_error"):
        exc = error_for_code(code, "msg")
        _, name = errors.ERROR_CODES[code]
        assert type(exc).__name__ == name
        assert errors.error_code(exc) == code


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        errors.NoSuchError


def test_dir_lists_the_surface():
    listed = dir(errors)
    for name in EXPECTED_CODES.values():
        assert name in listed
