"""The `repro.api` front door: surface, config shim, env parsing, fingerprints.

These tests pin the public API redesign: `EngineConfig` is the one way to
configure an engine, legacy constructor kwargs keep working through a
deprecation shim that names its replacement, environment resolution lives
in `EngineConfig.from_env`, and observability settings never perturb the
checkpoint config fingerprint (traces are diagnostics, not semantics).
"""

import dataclasses
import warnings

import pytest

from repro import api
from repro.algorithms.td.sssp import TemporalSSSP
from repro.core.config import (
    CheckpointConfig,
    EngineConfig,
    ExecutorConfig,
    ObservabilityConfig,
    StateConfig,
    WarpConfig,
)
from repro.core.engine import IntervalCentricEngine
from repro.datasets import transit_graph
from repro.obs.observers import InMemoryEvents
from repro.runtime.checkpoint import config_fingerprint
from repro.runtime.cluster import SimulatedCluster


def _engine(**kwargs):
    return IntervalCentricEngine(
        transit_graph(), TemporalSSSP("A"), cluster=SimulatedCluster(4), **kwargs
    )


# -- surface -------------------------------------------------------------------


def test_api_exports():
    expected = {
        "CheckpointConfig", "EngineConfig", "ExecutorConfig",
        "GraphFormatError", "IcmResult", "IntervalCentricEngine",
        "ObservabilityConfig", "StateConfig", "WarpConfig", "build_engine",
        "compare", "load_graph", "run", "serve",
    }
    assert expected <= set(api.__all__)
    for name in api.__all__:
        assert getattr(api, name) is not None


# -- load_graph: the one loading front door ------------------------------------


class TestLoadGraph:
    def test_dataset_by_name(self):
        graph = api.load_graph("transit")
        assert graph.num_vertices == 6
        scaled = api.load_graph("gplus", scale=0.25)
        assert scaled.num_vertices > 0

    def test_sniffs_text_binary_and_compact(self, tmp_path):
        from repro.graph.binary_io import dump_graph_binary
        from repro.graph.compact import CompactGraph
        from repro.graph.io import dump_graph

        graph = transit_graph()
        text, binary, compact = (
            tmp_path / "g.txt", tmp_path / "g.bin", tmp_path / "g.c2"
        )
        dump_graph(graph, text)
        dump_graph_binary(graph, binary)
        CompactGraph.from_temporal(graph).dump(compact)
        for path in (text, binary, compact):
            loaded = api.load_graph(str(path))
            assert (loaded.num_vertices, loaded.num_edges) == (6, 7)
        assert isinstance(api.load_graph(str(compact)), CompactGraph)

    def test_store_override(self):
        from repro.graph.compact import CompactGraph

        assert isinstance(
            api.load_graph("transit", store="compact"), CompactGraph
        )
        assert not isinstance(
            api.load_graph("transit", store="heap"), CompactGraph
        )

    def test_snap_sniff_and_contacts_explicit(self, tmp_path):
        events = tmp_path / "events.txt"
        events.write_text("1 2 3\n2 3 4\n1 3 5\n", encoding="utf-8")
        sniffed = api.load_graph(str(events))
        assert (sniffed.num_vertices, sniffed.num_edges) == (3, 3)
        # Contacts are never sniffed (their "t u v" column order is
        # indistinguishable from SNAP's "u v t" by eye) — explicit only.
        explicit = api.load_graph(str(events), format="contacts")
        assert explicit.num_edges == 3

    def test_unknown_name_is_a_format_error(self):
        with pytest.raises(api.GraphFormatError, match="named dataset"):
            api.load_graph("no-such-thing")

    def test_unknown_format_rejected(self):
        with pytest.raises(api.GraphFormatError, match="unknown graph format"):
            api.load_graph("transit", format="parquet")

    def test_unsniffable_file_names_the_formats(self, tmp_path):
        weird = tmp_path / "weird.txt"
        weird.write_text("completely unrelated prose\n", encoding="utf-8")
        with pytest.raises(api.GraphFormatError, match="cannot sniff"):
            api.load_graph(str(weird))

    def test_bad_itgr_version_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.itgr"
        bogus.write_bytes(b"ITGR\x09" + b"\x00" * 32)
        with pytest.raises(api.GraphFormatError, match="version 9"):
            api.load_graph(str(bogus))

    def test_stream_needs_explicit_format(self):
        import io

        with pytest.raises(api.GraphFormatError, match="open stream"):
            api.load_graph(io.StringIO("V v1 0 5\n"))

    def test_stray_options_rejected(self):
        with pytest.raises(api.GraphFormatError, match="bucket"):
            api.load_graph("transit", bucket=4)


def _partitions(result):
    return {vid: list(state) for vid, state in result.states.items()}


def test_run_and_build_engine_agree():
    result = api.run(transit_graph(), TemporalSSSP("A"))
    engine = api.build_engine(transit_graph(), TemporalSSSP("A"))
    assert _partitions(engine.run()) == _partitions(result)


def test_engine_config_is_frozen():
    config = EngineConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.max_supersteps = 5


# -- legacy-kwarg shim ---------------------------------------------------------


def test_legacy_kwargs_map_to_config_groups():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        engine = _engine(
            enable_warp_suppression=False, executor="serial",
            checkpoint_every=3, coalesce_states=False,
        )
    assert engine.config.warp.enable_suppression is False
    assert engine.config.executor.kind == "serial"
    assert engine.config.checkpoint.every == 3
    assert engine.config.state.coalesce is False


def test_legacy_kwargs_warn_with_replacement():
    with pytest.warns(DeprecationWarning, match=r"executor=ExecutorConfig\(kind"):
        _engine(executor="serial")
    with pytest.warns(DeprecationWarning, match=r"EngineConfig\(max_supersteps"):
        _engine(max_supersteps=7)


def test_unknown_legacy_kwarg_raises():
    with pytest.raises(TypeError, match="unexpected keyword argument 'warp_speed'"):
        _engine(warp_speed=9)


def test_legacy_and_config_spellings_run_identically():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _engine(enable_warp_combiner=False, executor="serial").run()
    config = EngineConfig(
        warp=WarpConfig(enable_combiner=False),
        executor=ExecutorConfig(kind="serial"),
    )
    modern = _engine(config=config).run()
    assert _partitions(legacy) == _partitions(modern)
    from repro.obs.registry import RUN_METRICS
    for field in RUN_METRICS.names(modeled=True):
        assert getattr(legacy.metrics, field) == getattr(modern.metrics, field)


def test_with_options_rejects_unknown_names():
    with pytest.raises(TypeError, match="unknown engine option 'warp_speed'"):
        EngineConfig().with_options(warp_speed=9)


# -- environment resolution ----------------------------------------------------


def test_from_env_reads_all_knobs():
    env = {
        "REPRO_EXECUTOR": "parallel",
        "REPRO_EXECUTOR_PROCESSES": "3",
        "REPRO_CHECKPOINT_EVERY": "2",
        "REPRO_CHECKPOINT_DIR": "/tmp/ckpt",
        "REPRO_FAULT_PLAN": "seed:7",
        "REPRO_PARTITIONER": "interval_greedy",
    }
    config = EngineConfig.from_env(env)
    assert config.executor.kind == "parallel"
    assert config.executor.kind_from_env is True
    assert config.executor.processes == 3
    assert config.executor.fault_plan == "seed:7"
    assert config.checkpoint.every == 2
    assert config.checkpoint.dir == "/tmp/ckpt"
    assert config.partitioning.kind == "interval_greedy"
    assert config.partitioning.kind_from_env is True


def test_from_env_validates_eagerly():
    with pytest.raises(ValueError, match="REPRO_EXECUTOR_PROCESSES='x'"):
        EngineConfig.from_env({"REPRO_EXECUTOR_PROCESSES": "x"})
    with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
        EngineConfig.from_env({"REPRO_EXECUTOR": "threads"})
    with pytest.raises(ValueError, match="fault plan|REPRO_FAULT_PLAN"):
        EngineConfig.from_env({"REPRO_FAULT_PLAN": "nonsense"})
    with pytest.raises(ValueError, match="REPRO_PARTITIONER='metis'"):
        EngineConfig.from_env({"REPRO_PARTITIONER": "metis"})


def test_explicit_executor_clears_env_provenance():
    config = EngineConfig.from_env({"REPRO_EXECUTOR": "parallel"})
    assert config.executor.kind_from_env is True
    overridden = config.with_options(executor="parallel")
    assert overridden.executor.kind_from_env is False


def test_explicit_partitioner_clears_env_provenance():
    config = EngineConfig.from_env({"REPRO_PARTITIONER": "greedy"})
    assert config.partitioning.kind_from_env is True
    overridden = config.with_options(partitioner="greedy")
    assert overridden.partitioning.kind_from_env is False
    assert overridden.partitioning.kind == "greedy"


def test_partitioner_options_map_to_config():
    config = EngineConfig().with_options(
        partitioner="range", partitioner_seed=3, partitioner_slack=1.25
    )
    assert config.partitioning.kind == "range"
    assert config.partitioning.seed == 3
    assert config.partitioning.capacity_slack == 1.25
    with pytest.raises(ValueError, match="capacity_slack"):
        EngineConfig().with_options(partitioner_slack=0.5)


# -- observability vs checkpoint fingerprint -----------------------------------


def test_fingerprint_ignores_observability():
    plain = _engine(config=EngineConfig())
    observed = _engine(config=EngineConfig(
        observability=ObservabilityConfig(observers=(InMemoryEvents(),)),
    ))
    traced = _engine(config=EngineConfig(
        observability=ObservabilityConfig(trace_path="/tmp/x.trace"),
    ))
    assert config_fingerprint(plain) == config_fingerprint(observed)
    assert config_fingerprint(plain) == config_fingerprint(traced)


def test_fingerprint_stable_across_legacy_and_config_spellings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _engine(enable_warp_suppression=False)
    modern = _engine(config=EngineConfig(warp=WarpConfig(enable_suppression=False)))
    assert config_fingerprint(legacy) == config_fingerprint(modern)


def test_fingerprint_tracks_modeled_options():
    base = _engine(config=EngineConfig())
    tweaked = _engine(config=EngineConfig(warp=WarpConfig(enable_combiner=False)))
    assert config_fingerprint(base) != config_fingerprint(tweaked)


# -- observe coercion ----------------------------------------------------------


def test_observe_accepts_path_observer_and_iterable(tmp_path):
    trace = tmp_path / "run.trace"
    events = InMemoryEvents()
    api.run(transit_graph(), TemporalSSSP("A"), observe=str(trace))
    assert trace.exists() and trace.read_text().strip()
    api.run(transit_graph(), TemporalSSSP("A"), observe=events)
    assert events.records
    more = InMemoryEvents()
    api.run(transit_graph(), TemporalSSSP("A"), observe=[more])
    assert more.logical() == events.logical()


def test_observe_config_merges_with_base_config():
    base_events, extra_events = InMemoryEvents(), InMemoryEvents()
    config = EngineConfig(
        observability=ObservabilityConfig(observers=(base_events,))
    )
    api.run(transit_graph(), TemporalSSSP("A"), config=config, observe=extra_events)
    assert base_events.records and extra_events.records
    assert base_events.logical() == extra_events.logical()
