"""In-tree guard for the facade contract: engines are built via `repro.api`.

Runs the same check as ``scripts/lint_engine_construction.py`` (which CI
executes standalone): no module under ``src/repro`` other than the api
facade may construct :class:`IntervalCentricEngine` directly.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "lint_engine_construction",
        ROOT / "scripts" / "lint_engine_construction.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_direct_engine_construction_outside_api():
    lint = _load_lint()
    assert lint.violations(ROOT) == []


def test_lint_flags_direct_construction(tmp_path):
    lint = _load_lint()
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "rogue.py").write_text(
        "engine = IntervalCentricEngine(graph, program)\n", encoding="utf-8"
    )
    hits = lint.violations(tmp_path)
    assert len(hits) == 1 and "rogue.py:1" in hits[0]


def test_lint_ignores_strings_and_attributes(tmp_path):
    lint = _load_lint()
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text(
        'msg = "IntervalCentricEngine(..., executor=...) is deprecated"\n'
        "cls = MyIntervalCentricEngine(graph)\n",
        encoding="utf-8",
    )
    assert lint.violations(tmp_path) == []


def test_lint_flags_direct_loader_calls(tmp_path):
    lint = _load_lint()
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "rogue.py").write_text(
        "g = load_graph_binary(path)\n"
        "h = load_snap_edgelist(path)\n",
        encoding="utf-8",
    )
    hits = lint.violations(tmp_path)
    assert len(hits) == 2
    assert any("load_graph_binary" in hit for hit in hits)
    assert any("api.load_graph" in hit for hit in hits)


def test_lint_allows_loaders_inside_graph_package(tmp_path):
    lint = _load_lint()
    pkg = tmp_path / "src" / "repro" / "graph"
    pkg.mkdir(parents=True)
    (pkg / "binary_io.py").write_text(
        "def load_graph_binary(source):\n    return None\n", encoding="utf-8"
    )
    api = tmp_path / "src" / "repro" / "api.py"
    api.write_text("graph = load_graph_binary(source)\n", encoding="utf-8")
    assert lint.violations(tmp_path) == []
