"""In-tree guard for the facade contract: engines are built via `repro.api`.

Runs the same check as ``scripts/lint_engine_construction.py`` (which CI
executes standalone): no module under ``src/repro`` other than the api
facade may construct :class:`IntervalCentricEngine` directly.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "lint_engine_construction",
        ROOT / "scripts" / "lint_engine_construction.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_direct_engine_construction_outside_api():
    lint = _load_lint()
    assert lint.violations(ROOT) == []


def test_lint_flags_direct_construction(tmp_path):
    lint = _load_lint()
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "rogue.py").write_text(
        "engine = IntervalCentricEngine(graph, program)\n", encoding="utf-8"
    )
    hits = lint.violations(tmp_path)
    assert len(hits) == 1 and "rogue.py:1" in hits[0]


def test_lint_ignores_strings_and_attributes(tmp_path):
    lint = _load_lint()
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "ok.py").write_text(
        'msg = "IntervalCentricEngine(..., executor=...) is deprecated"\n'
        "cls = MyIntervalCentricEngine(graph)\n",
        encoding="utf-8",
    )
    assert lint.violations(tmp_path) == []
