"""API quality gates: exports resolve, and every public item is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.obs",
    "repro.core",
    "repro.graph",
    "repro.runtime",
    "repro.baselines",
    "repro.algorithms",
    "repro.algorithms.ti",
    "repro.algorithms.td",
    "repro.datasets",
    "repro.query",
    "repro.streaming",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_items_documented(name):
    """Every exported class and function carries a docstring."""
    module = importlib.import_module(name)
    undocumented = []
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(symbol)
    assert not undocumented, f"{name}: missing docstrings on {undocumented}"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), name


def test_public_class_methods_documented():
    """The hot user-facing classes document every public method."""
    from repro.core.context import VertexContext
    from repro.core.engine import IntervalCentricEngine
    from repro.core.interval import Interval
    from repro.core.state import PartitionedState
    from repro.query.timeline import Timeline

    for cls in (Interval, PartitionedState, VertexContext, Timeline,
                IntervalCentricEngine):
        missing = []
        for attr_name, attr in vars(cls).items():
            if attr_name.startswith("_") or not callable(attr):
                continue
            if not (getattr(attr, "__doc__", None) or "").strip():
                missing.append(f"{cls.__name__}.{attr_name}")
        assert not missing, f"undocumented public methods: {missing}"
