"""Tests for the temporal graph model and its soundness constraints."""

import pytest

from repro.core.interval import FOREVER, Interval
from repro.graph.builder import TemporalGraphBuilder
from repro.graph.model import TemporalGraph


def small_graph():
    b = TemporalGraphBuilder()
    b.add_vertex("A", 0, 10)
    b.add_vertex("B", 2, 10)
    b.add_edge("A", "B", 3, 7, eid="e1", props={"w": 5})
    return b.build()


class TestBuilder:
    def test_basic_build(self):
        g = small_graph()
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.vertex("A").lifespan == Interval(0, 10)
        assert g.edge("e1").lifespan == Interval(3, 7)

    def test_constraint1_duplicate_vertex(self):
        b = TemporalGraphBuilder()
        b.add_vertex("A")
        with pytest.raises(ValueError, match="constraint 1"):
            b.add_vertex("A")

    def test_constraint1_duplicate_edge_id(self):
        b = TemporalGraphBuilder()
        b.add_vertices(["A", "B"])
        b.add_edge("A", "B", eid="e")
        with pytest.raises(ValueError, match="constraint 1"):
            b.add_edge("A", "B", eid="e")

    def test_constraint2_edge_outside_endpoint_lifespan(self):
        b = TemporalGraphBuilder()
        b.add_vertex("A", 0, 5)
        b.add_vertex("B", 0, 10)
        with pytest.raises(ValueError, match="constraint 2"):
            b.add_edge("A", "B", 3, 8)

    def test_constraint2_unknown_endpoint(self):
        b = TemporalGraphBuilder()
        b.add_vertex("A")
        with pytest.raises(ValueError, match="unknown vertex"):
            b.add_edge("A", "Z")

    def test_constraint3_property_outside_lifespan(self):
        b = TemporalGraphBuilder()
        b.add_vertices(["A", "B"])
        with pytest.raises(ValueError, match="constraint 3"):
            b.add_edge("A", "B", 2, 6, props={"w": [(2, 9, 1)]})

    def test_overlapping_property_values_rejected(self):
        b = TemporalGraphBuilder()
        b.add_vertices(["A", "B"])
        with pytest.raises(ValueError, match="overlaps"):
            b.add_edge("A", "B", 0, 10, props={"w": [(0, 5, 1), (3, 8, 2)]})

    def test_scalar_property_spans_lifespan(self):
        g = small_graph()
        edge = g.edge("e1")
        assert edge.properties.value_at("w", 3) == 5
        assert edge.properties.value_at("w", 6) == 5
        assert edge.properties.value_at("w", 7) is None  # half-open

    def test_builder_single_use(self):
        b = TemporalGraphBuilder()
        b.add_vertex("A")
        b.build()
        with pytest.raises(RuntimeError):
            b.add_vertex("B")

    def test_generated_edge_ids_unique(self):
        b = TemporalGraphBuilder()
        b.add_vertices(["A", "B"])
        e1 = b.add_edge("A", "B")
        e2 = b.add_edge("A", "B")
        assert e1 != e2  # multigraph allows parallel edges

    def test_vertex_properties(self):
        b = TemporalGraphBuilder()
        b.add_vertex("A", 0, 10, props={"kind": [(0, 4, "bus"), (4, 10, "rail")]})
        g = b.build()
        assert g.vertex("A").properties.value_at("kind", 3) == "bus"
        assert g.vertex("A").properties.value_at("kind", 4) == "rail"


class TestGraphAccessors:
    def test_adjacency(self):
        g = small_graph()
        assert [e.eid for e in g.out_edges("A")] == ["e1"]
        assert [e.eid for e in g.in_edges("B")] == ["e1"]
        assert g.out_edges("B") == []

    def test_lifespan_and_horizon(self):
        g = small_graph()
        assert g.lifespan() == Interval(0, 10)
        assert g.time_horizon() == 10

    def test_horizon_all_unbounded_defaults(self):
        b = TemporalGraphBuilder()
        b.add_vertex("A")
        g = b.build()
        assert g.time_horizon(default=5) == 5

    def test_reversed(self):
        g = small_graph()
        rev = g.reversed()
        edge = rev.edge("e1")
        assert (edge.src, edge.dst) == ("B", "A")
        assert edge.lifespan == Interval(3, 7)
        assert edge.properties.value_at("w", 4) == 5

    def test_validate_catches_manual_corruption(self):
        g = small_graph()
        from repro.graph.model import TemporalEdge

        bad = TemporalEdge("bad", "B", "A", Interval(0, 10))  # B starts at 2
        g._add_edge(bad)
        with pytest.raises(ValueError):
            g.validate()


class TestEdgePieces:
    def test_property_change_points_split_pieces(self):
        b = TemporalGraphBuilder()
        b.add_vertices(["A", "B"])
        b.add_edge("A", "B", 3, 9, eid="e", props={"c": [(3, 5, 4), (5, 6, 3)], "t": 1})
        g = b.build()
        pieces = g.edge("e").pieces(Interval(0, FOREVER))
        assert [p[0] for p in pieces] == [Interval(3, 5), Interval(5, 6), Interval(6, 9)]
        assert pieces[0][1].get("c") == 4
        assert pieces[1][1].get("c") == 3
        assert pieces[2][1].get("c") is None
        assert all(p[1].get("t") == 1 for p in pieces)

    def test_pieces_clipped_to_window(self):
        g = small_graph()
        pieces = g.edge("e1").pieces(Interval(5, 20))
        assert [p[0] for p in pieces] == [Interval(5, 7)]

    def test_pieces_disjoint_window(self):
        g = small_graph()
        assert g.edge("e1").pieces(Interval(8, 20)) == []

    def test_propertyless_edge_single_piece(self):
        b = TemporalGraphBuilder()
        b.add_vertices(["A", "B"])
        b.add_edge("A", "B", 0, 6, eid="e")
        g = b.build()
        pieces = g.edge("e").pieces(Interval(0, 10))
        assert len(pieces) == 1
        assert pieces[0][0] == Interval(0, 6)
