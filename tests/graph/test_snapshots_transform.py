"""Tests for snapshot extraction and transformed-graph construction."""

import pytest

from repro.core.interval import Interval
from repro.datasets.transit import transit_graph
from repro.graph.builder import TemporalGraphBuilder
from repro.graph.snapshots import (
    iter_snapshots,
    largest_snapshot,
    snapshot_at,
    snapshot_sizes,
)
from repro.graph.transform import (
    CHAIN,
    build_snapshot_replica_graph,
    build_transformed_graph,
    transformed_size,
)


def evolving_graph():
    b = TemporalGraphBuilder()
    b.add_vertex("A", 0, 6)
    b.add_vertex("B", 0, 6)
    b.add_vertex("C", 2, 5)
    b.add_edge("A", "B", 0, 3, eid="ab")
    b.add_edge("B", "C", 2, 5, eid="bc", props={"travel-cost": 2, "travel-time": 1})
    return b.build()


class TestSnapshots:
    def test_snapshot_membership(self):
        g = evolving_graph()
        s0 = snapshot_at(g, 0)
        assert sorted(s0.vertex_ids()) == ["A", "B"]
        assert s0.num_edges == 1
        s3 = snapshot_at(g, 3)
        assert sorted(s3.vertex_ids()) == ["A", "B", "C"]
        assert [e.eid for e in s3.edges()] == ["bc"]

    def test_snapshot_property_values(self):
        g = evolving_graph()
        s2 = snapshot_at(g, 2)
        bc = [e for e in s2.edges() if e.eid == "bc"][0]
        assert bc.get("travel-cost") == 2

    def test_iter_and_sizes(self):
        g = evolving_graph()
        snaps = list(iter_snapshots(g))
        assert len(snaps) == 6
        sizes = snapshot_sizes(g)
        assert sizes[0] == (0, 2, 1)
        assert sizes[5] == (5, 2, 0)

    def test_largest_snapshot(self):
        g = evolving_graph()
        largest = largest_snapshot(g)
        assert largest.time == 2  # both edges alive at t=2
        assert largest.num_edges == 2

    def test_snapshot_reversed(self):
        g = evolving_graph()
        rev = snapshot_at(g, 0).reversed()
        assert [e.dst for e in rev.out_edges("B")] == ["A"]


class TestTransformedGraph:
    def test_replica_and_edge_structure(self):
        b = TemporalGraphBuilder()
        b.add_vertices(["A", "B"])
        b.add_edge("A", "B", 3, 5, eid="e", props={"travel-cost": 7, "travel-time": 1})
        g = b.build()
        tg = build_transformed_graph(g, horizon=6)
        # Departures at 3 and 4, arrivals at 4 and 5; plus lifespan-start replicas.
        assert tg.has_vertex(("A", 3)) and tg.has_vertex(("A", 4))
        assert tg.has_vertex(("B", 4)) and tg.has_vertex(("B", 5))
        app = [e for e in tg.edges() if not e.get(CHAIN)]
        assert {(e.src, e.dst) for e in app} == {
            (("A", 3), ("B", 4)),
            (("A", 4), ("B", 5)),
        }
        assert all(e.get("cost") == 7 for e in app)
        chains = [e for e in tg.edges() if e.get(CHAIN)]
        # Chains within each vertex's replica timeline.
        assert (("B", 4), ("B", 5)) in {(e.src, e.dst) for e in chains}

    def test_transformed_size_matches_built_graph(self):
        g = transit_graph()
        tv, te = transformed_size(g)
        tg = build_transformed_graph(g)
        assert (tg.num_vertices, tg.num_edges) == (tv, te)

    def test_transformed_is_larger_than_interval_graph(self):
        """Table 1 / Fig. 6a: the transformed representation blows up."""
        from repro.datasets import twitter

        g = twitter(scale=0.3)
        tv, te = transformed_size(g)
        assert tv > g.num_vertices
        assert te > g.num_edges

    def test_horizon_clipping(self):
        b = TemporalGraphBuilder()
        b.add_vertices(["A", "B"])
        b.add_edge("A", "B", 0, 100, eid="e")
        g = b.build()
        tg = build_transformed_graph(g, horizon=4)
        app = [e for e in tg.edges() if not e.get(CHAIN)]
        assert len(app) == 4  # departures 0..3 only


class TestSnapshotReplicaGraph:
    def test_same_time_edges_and_chains(self):
        g = evolving_graph()
        rg = build_snapshot_replica_graph(g)
        app = [(e.src, e.dst) for e in rg.edges() if not e.get(CHAIN)]
        assert (("A", 0), ("B", 0)) in app
        assert (("B", 2), ("C", 2)) in app
        assert (("A", 3), ("B", 3)) not in app  # ab dead at 3
        chains = [(e.src, e.dst) for e in rg.edges() if e.get(CHAIN)]
        assert (("C", 2), ("C", 3)) in chains
        assert not rg.has_vertex(("C", 5))

    def test_replica_counts_match_multisnapshot_totals(self):
        g = evolving_graph()
        rg = build_snapshot_replica_graph(g)
        total_v = sum(nv for _, nv, _ in snapshot_sizes(g))
        app_edges = sum(1 for e in rg.edges() if not e.get(CHAIN))
        total_e = sum(ne for _, _, ne in snapshot_sizes(g))
        assert rg.num_vertices == total_v
        assert app_edges == total_e
