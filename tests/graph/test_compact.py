"""Tests for the compact columnar graph store (`repro.graph.compact`).

The load-bearing property is *bit-identity*: freezing a heap
``TemporalGraph`` into a ``CompactGraph`` must preserve enumeration
order, lifespans, property timelines and edge-piece cuts exactly, so a
run over either store produces byte-identical results.  The Hypothesis
round-trip below drives that contract over randomly shaped graphs; the
rest covers the on-disk format's failure modes, zero-copy sharing, and
the ``REPRO_GRAPH_STORE`` resolution knob.
"""

import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import FOREVER, Interval
from repro.datasets import transit_graph
from repro.errors import GraphFormatError
from repro.graph.builder import TemporalGraphBuilder
from repro.graph.compact import (
    CompactGraph,
    resolve_graph_store,
)
from repro.runtime.checkpoint import graph_fingerprint

# -- random temporal graphs ----------------------------------------------------

_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.tuples(st.integers(0, 99), st.text(max_size=4)),
)


@st.composite
def temporal_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    builder = TemporalGraphBuilder()
    lifespans = {}
    for i in range(n):
        start = draw(st.integers(0, 20))
        end = draw(st.one_of(st.integers(start + 2, 60), st.just(FOREVER)))
        vid = f"v{i}"
        props = _draw_props(draw, Interval(start, end))
        builder.add_vertex(vid, start, end, props=props)
        lifespans[vid] = Interval(start, end)
    n_edges = draw(st.integers(0, min(8, n * n)))
    for _ in range(n_edges):
        src = f"v{draw(st.integers(0, n - 1))}"
        dst = f"v{draw(st.integers(0, n - 1))}"
        common = lifespans[src].intersect(lifespans[dst])
        if common is None or common.length < 2:
            continue
        hi = min(common.end, common.start + 50)
        start = draw(st.integers(common.start, hi - 2))
        end = draw(
            st.one_of(st.integers(start + 1, hi), st.just(common.end))
            if common.end < FOREVER
            else st.one_of(st.integers(start + 1, hi), st.just(FOREVER))
        )
        props = _draw_props(draw, Interval(start, end))
        builder.add_edge(src, dst, start, end, props=props)
    return builder.build()


def _draw_props(draw, lifespan: Interval):
    """0–2 labels, each a run of consecutive entries inside ``lifespan``."""
    props = {}
    for label in draw(st.lists(st.sampled_from(["w", "cap"]),
                               unique=True, max_size=2)):
        hi = min(lifespan.end, lifespan.start + 40)
        if hi - lifespan.start < 2:
            continue
        cuts = sorted(draw(st.sets(st.integers(lifespan.start, hi),
                                   min_size=2, max_size=4)))
        entries = [
            (lo, hi_, draw(_values)) for lo, hi_ in zip(cuts, cuts[1:])
        ]
        if entries:
            props[label] = entries
    return props or None


def assert_graphs_identical(a, b):
    """Field-for-field equality including enumeration order."""
    assert [v.vid for v in a.vertices()] == [v.vid for v in b.vertices()]
    assert [e.eid for e in a.edges()] == [e.eid for e in b.edges()]
    for va in a.vertices():
        vb = b.vertex(va.vid)
        assert va.lifespan == vb.lifespan
        assert _props_of(va) == _props_of(vb)
    for ea in a.edges():
        eb = b.edge(ea.eid)
        assert (ea.src, ea.dst, ea.lifespan) == (eb.src, eb.dst, eb.lifespan)
        assert _props_of(ea) == _props_of(eb)
    for va in a.vertices():
        assert [e.eid for e in a.out_edges(va.vid)] == \
               [e.eid for e in b.out_edges(va.vid)]
        assert [e.eid for e in a.in_edges(va.vid)] == \
               [e.eid for e in b.in_edges(va.vid)]


def _props_of(entity):
    return {
        label: list(entity.properties.timeline(label))
        for label in entity.properties
    }


# -- the round-trip contract ---------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(temporal_graphs())
    def test_temporal_compact_temporal(self, graph):
        compact = CompactGraph.from_temporal(graph)
        assert_graphs_identical(graph, compact)
        assert_graphs_identical(graph, compact.to_temporal())
        assert graph_fingerprint(compact) == graph_fingerprint(graph)

    @settings(max_examples=40, deadline=None)
    @given(temporal_graphs())
    def test_bytes_round_trip(self, graph):
        compact = CompactGraph.from_temporal(graph)
        again = CompactGraph.from_bytes(compact.to_bytes())
        assert_graphs_identical(graph, again)
        assert again.to_bytes() == compact.to_bytes()

    @settings(max_examples=40, deadline=None)
    @given(temporal_graphs(), st.integers(0, 60), st.integers(1, 30))
    def test_edge_pieces_match_heap(self, graph, start, length):
        compact = CompactGraph.from_temporal(graph)
        window = Interval(start, start + length)
        for edge in graph.edges():
            expected = edge.pieces(window)
            got = compact.edge(edge.eid).pieces(window)
            # EdgePiece has no __eq__; compare every field, including the
            # values-dict iteration order (message payloads serialise it).
            assert [
                (iv, p.edge.eid, p.interval, list(p.values.items()))
                for iv, p in got
            ] == [
                (iv, p.edge.eid, p.interval, list(p.values.items()))
                for iv, p in expected
            ]

    @settings(max_examples=30, deadline=None)
    @given(temporal_graphs())
    def test_derived_quantities_match_heap(self, graph):
        compact = CompactGraph.from_temporal(graph)
        assert compact.time_horizon() == graph.time_horizon()
        assert compact.lifespan() == graph.lifespan()
        assert compact.vertex_ids() == graph.vertex_ids()
        assert compact.num_vertices == graph.num_vertices
        assert compact.num_edges == graph.num_edges
        compact.validate()

    def test_transit_values_at(self):
        graph = transit_graph()
        compact = CompactGraph.from_temporal(graph)
        for edge in graph.edges():
            twin = compact.edge(edge.eid)
            for t in range(0, graph.time_horizon() + 1):
                assert twin.properties.values_at(t) == \
                       edge.properties.values_at(t)

    def test_reversed_matches_heap(self):
        graph = transit_graph()
        compact = CompactGraph.from_temporal(graph)
        assert_graphs_identical(graph.reversed(), compact.reversed())

    def test_missing_lookups_raise_like_heap(self):
        compact = CompactGraph.from_temporal(transit_graph())
        with pytest.raises(KeyError):
            compact.vertex("nope")
        with pytest.raises(KeyError):
            compact.edge("nope")
        assert compact.out_edges("nope") == []
        assert not compact.has_vertex("nope")


# -- the on-disk format --------------------------------------------------------


class TestFormat:
    def test_bad_magic(self):
        with pytest.raises(GraphFormatError):
            CompactGraph.from_bytes(b"NOPE" + b"\x00" * 64)

    def test_bad_version(self):
        blob = bytearray(CompactGraph.from_temporal(transit_graph()).to_bytes())
        blob[4] = 7
        with pytest.raises(GraphFormatError) as err:
            CompactGraph.from_bytes(bytes(blob))
        assert "7" in str(err.value)

    def test_truncated(self):
        blob = CompactGraph.from_temporal(transit_graph()).to_bytes()
        for cut in (0, 3, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(GraphFormatError):
                CompactGraph.from_bytes(blob[:cut])

    def test_error_code_is_stable(self):
        assert GraphFormatError.code == "graph_format"
        assert issubclass(GraphFormatError, ValueError)

    def test_dump_is_atomic(self, tmp_path):
        compact = CompactGraph.from_temporal(transit_graph())
        target = tmp_path / "graph.itgr2"
        compact.dump(target)
        loaded = CompactGraph.load(target)
        assert_graphs_identical(compact, loaded)
        loaded.close()
        # No staging debris: the writer stages next to the target and
        # renames over it.
        assert [p.name for p in tmp_path.iterdir()] == ["graph.itgr2"]

    def test_mmap_load_round_trip(self, tmp_path):
        graph = transit_graph()
        target = tmp_path / "graph.itgr2"
        CompactGraph.from_temporal(graph).dump(target)
        loaded = CompactGraph.load(target)
        assert graph_fingerprint(loaded) == graph_fingerprint(graph)
        loaded.close()


# -- zero-copy sharing ---------------------------------------------------------


class TestSharing:
    def test_pickle_round_trip_private_buffer(self):
        compact = CompactGraph.from_temporal(transit_graph())
        clone = pickle.loads(pickle.dumps(compact))
        assert_graphs_identical(compact, clone)

    def test_pickle_of_mmap_graph_ships_the_path(self, tmp_path):
        target = tmp_path / "graph.itgr2"
        CompactGraph.from_temporal(transit_graph()).dump(target)
        loaded = CompactGraph.load(target)
        clone = pickle.loads(pickle.dumps(loaded))
        assert_graphs_identical(loaded, clone)
        clone.close()
        loaded.close()

    def test_shared_memory_attach(self):
        compact = CompactGraph.from_temporal(transit_graph())
        before = compact.to_bytes()
        compact.ensure_shared()
        # Idempotent: a second call must not re-copy.
        compact.ensure_shared()
        clone = pickle.loads(pickle.dumps(compact))
        try:
            assert clone.to_bytes() == before
            assert_graphs_identical(compact, clone)
        finally:
            clone.close()
            compact.close()


# -- store resolution ----------------------------------------------------------


class TestResolveGraphStore:
    def test_default_is_heap(self):
        graph = transit_graph()
        assert resolve_graph_store(graph, None, env={}) is graph

    def test_explicit_compact(self):
        graph = transit_graph()
        got = resolve_graph_store(graph, "compact", env={})
        assert isinstance(got, CompactGraph)

    def test_env_knob(self):
        got = resolve_graph_store(
            transit_graph(), None, env={"REPRO_GRAPH_STORE": "compact"}
        )
        assert isinstance(got, CompactGraph)

    def test_compact_graph_never_thawed(self):
        compact = CompactGraph.from_temporal(transit_graph())
        assert resolve_graph_store(compact, "heap", env={}) is compact
        assert resolve_graph_store(compact, "compact", env={}) is compact

    def test_unknown_store_rejected(self):
        with pytest.raises(ValueError) as err:
            resolve_graph_store(transit_graph(), "columnar", env={})
        assert "REPRO_GRAPH_STORE" in str(err.value)


# -- engine bit-identity (one explicit probe; CI runs the full matrix) ---------


def test_engine_results_identical_across_stores():
    from repro import api
    from repro.algorithms.td.sssp import TemporalSSSP

    graph = transit_graph()
    heap = api.run(graph, TemporalSSSP("A"), graph_name="transit")
    compact = api.run(
        CompactGraph.from_temporal(graph), TemporalSSSP("A"),
        graph_name="transit",
    )
    assert {v: list(s) for v, s in heap.states.items()} == \
           {v: list(s) for v, s in compact.states.items()}
    assert heap.metrics.messages_sent == compact.metrics.messages_sent
    assert heap.metrics.compute_calls == compact.metrics.compute_calls


# -- deprecation shims ---------------------------------------------------------


class TestDeprecatedLoaders:
    def test_package_level_loader_warns(self):
        import repro.graph as graph_pkg

        with pytest.warns(DeprecationWarning, match="api.load_graph"):
            fn = graph_pkg.load_graph_binary
        from repro.graph.binary_io import load_graph_binary

        assert fn is load_graph_binary

    def test_all_shimmed_names_resolve(self):
        import repro.graph as graph_pkg

        for name in ("load_graph", "load_graph_binary",
                     "load_snap_edgelist", "load_contact_sequence"):
            with pytest.warns(DeprecationWarning):
                assert getattr(graph_pkg, name) is not None
