"""Tests for the dataset generators: transit, Table-1 surrogates, LDBC."""

import pytest

from repro.core.interval import Interval
from repro.datasets import (
    SURROGATES,
    ldbc_graph,
    load_surrogate,
    transit_graph,
)
from repro.datasets.synthetic import TRAVEL_COST, TRAVEL_TIME
from repro.graph.stats import dataset_stats


class TestTransit:
    def test_structure(self):
        g = transit_graph()
        assert g.num_vertices == 6
        assert g.num_edges == 7
        g.validate()

    def test_edge_ab_two_cost_regimes(self):
        g = transit_graph()
        ab = g.edge("AB")
        timeline = ab.properties.timeline(TRAVEL_COST).entries()
        assert timeline == [(Interval(3, 5), 4), (Interval(5, 6), 3)]

    def test_all_travel_times_are_one(self):
        g = transit_graph()
        for e in g.edges():
            assert e.properties.value_at(TRAVEL_TIME, e.lifespan.start) == 1


class TestSurrogates:
    @pytest.mark.parametrize("name", sorted(SURROGATES))
    def test_valid_and_deterministic(self, name):
        g1 = load_surrogate(name, scale=0.3)
        g2 = load_surrogate(name, scale=0.3)
        g1.validate()
        assert g1.num_vertices == g2.num_vertices
        assert g1.num_edges == g2.num_edges
        # Deterministic edge lifespans too.
        spans1 = sorted((str(e.eid), e.lifespan) for e in g1.edges())
        spans2 = sorted((str(e.eid), e.lifespan) for e in g2.edges())
        assert spans1 == spans2

    @pytest.mark.parametrize("name", sorted(SURROGATES))
    def test_every_edge_has_td_properties(self, name):
        g = load_surrogate(name, scale=0.3)
        for e in g.edges():
            assert TRAVEL_COST in e.properties
            assert TRAVEL_TIME in e.properties
            # Cost timeline covers the whole lifespan.
            covered = e.properties.timeline(TRAVEL_COST).total_covered()
            assert covered == e.lifespan.length

    def test_scale_grows_graph(self):
        small = load_surrogate("twitter", scale=0.3)
        big = load_surrogate("twitter", scale=1.0)
        assert big.num_vertices > small.num_vertices
        assert big.num_edges > small.num_edges

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_surrogate("orkut")

    def test_characteristic_lifespans(self):
        """The Table-1 shape each surrogate exists to preserve."""
        stats = {name: dataset_stats(load_surrogate(name, scale=0.3), name)
                 for name in SURROGATES}
        assert stats["gplus"].avg_edge_lifespan == 1.0
        assert stats["usrn"].avg_edge_lifespan == stats["usrn"].num_snapshots
        assert stats["twitter"].avg_edge_lifespan == stats["twitter"].num_snapshots
        # Mixed lifespans: mostly unit, average close to 1 but above it.
        assert 1.0 < stats["reddit"].avg_edge_lifespan < 4.0
        # Long but not full.
        assert (stats["mag"].num_snapshots * 0.4
                < stats["mag"].avg_edge_lifespan
                < stats["mag"].num_snapshots)

    def test_usrn_is_planar_grid_with_high_diameter(self):
        from repro.algorithms.td.eat import TemporalEAT
        from repro.core.engine import IntervalCentricEngine

        g = load_surrogate("usrn", scale=1.0)
        # 4-neighbour grid: max out-degree 4.
        assert max(len(g.out_edges(v)) for v in g.vertex_ids()) <= 4


class TestLdbc:
    def test_weak_scaling_load(self):
        g1 = ldbc_graph(1, vertices_per_machine=50, edges_per_machine=300)
        g4 = ldbc_graph(4, vertices_per_machine=50, edges_per_machine=300)
        assert g1.num_vertices == 50
        assert g4.num_vertices == 200
        assert g4.num_edges == 4 * g1.num_edges
        g4.validate()

    def test_churn_exists(self):
        g = ldbc_graph(2, vertices_per_machine=50, edges_per_machine=300)
        horizon = g.time_horizon()
        lifespans = [e.lifespan for e in g.edges()]
        assert any(iv.start > 0 for iv in lifespans)  # births over time
        assert any(iv.end < horizon for iv in lifespans)  # deaths too
        assert any(iv.length >= horizon // 2 for iv in lifespans)  # persisters

    def test_deterministic_per_machine_count(self):
        a = ldbc_graph(2, seed=7)
        b = ldbc_graph(2, seed=7)
        assert sorted(str(e.eid) for e in a.edges()) == sorted(str(e.eid) for e in b.edges())
