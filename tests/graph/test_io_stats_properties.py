"""Tests for graph IO round-trips, dataset statistics, and property sets."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import FOREVER, Interval
from repro.core.state import states_equal_pointwise
from repro.datasets import gplus, transit_graph, twitter, usrn
from repro.graph.io import dump_graph, load_graph
from repro.graph.properties import PropertySet, PropertyTimeline
from repro.graph.stats import dataset_stats, memory_footprint


class TestPropertyTimeline:
    def test_add_and_query(self):
        tl = PropertyTimeline()
        tl.add(Interval(0, 4), "a")
        tl.add(Interval(6, 9), "b")
        assert tl.value_at(0) == "a"
        assert tl.value_at(5) is None
        assert tl.value_at(6) == "b"

    def test_overlap_rejected(self):
        tl = PropertyTimeline()
        tl.add(Interval(0, 5), 1)
        with pytest.raises(ValueError):
            tl.add(Interval(4, 8), 2)
        with pytest.raises(ValueError):
            tl.add(Interval(0, 2), 3)

    def test_out_of_order_insertion(self):
        tl = PropertyTimeline()
        tl.add(Interval(6, 9), "b")
        tl.add(Interval(0, 4), "a")
        assert [iv for iv, _ in tl.entries()] == [Interval(0, 4), Interval(6, 9)]

    def test_pieces(self):
        tl = PropertyTimeline()
        tl.add(Interval(0, 4), "a")
        tl.add(Interval(4, 9), "b")
        assert tl.pieces(Interval(2, 6)) == [(Interval(2, 4), "a"), (Interval(4, 6), "b")]

    def test_boundaries_and_span(self):
        tl = PropertyTimeline()
        tl.add(Interval(2, 4), 1)
        tl.add(Interval(7, 9), 2)
        assert tl.boundaries() == [2, 4, 7, 9]
        assert tl.span() == Interval(2, 9)
        assert tl.total_covered() == 4

    def test_property_set(self):
        ps = PropertySet()
        ps.add("x", Interval(0, 3), 1)
        ps.add("y", Interval(1, 5), 2)
        assert ps.labels() == ["x", "y"]
        assert ps.values_at(2) == {"x": 1, "y": 2}
        assert ps.values_at(4) == {"y": 2}
        assert ps.boundaries() == [0, 1, 3, 5]
        assert ps.total_entries() == 2


class TestIO:
    def test_roundtrip_transit(self):
        g = transit_graph()
        buf = io.StringIO()
        dump_graph(g, buf)
        buf.seek(0)
        g2 = load_graph(buf)
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges
        for e in g.edges():
            e2 = g2.edge(e.eid)
            assert (e2.src, e2.dst, e2.lifespan) == (e.src, e.dst, e.lifespan)
            for label in e.properties:
                assert e2.properties.timeline(label).entries() == \
                    e.properties.timeline(label).entries()

    def test_roundtrip_file(self, tmp_path):
        g = gplus(scale=0.2)
        path = tmp_path / "g.tg"
        dump_graph(g, path)
        g2 = load_graph(path)
        assert g2.num_edges == g.num_edges

    def test_bad_line_reports_location(self):
        with pytest.raises(ValueError, match="line 2"):
            load_graph(io.StringIO("# header\nBOGUS\trecord\n"))

    def test_unbounded_interval_roundtrip(self):
        g = transit_graph()
        buf = io.StringIO()
        dump_graph(g, buf)
        assert "inf" in buf.getvalue()
        buf.seek(0)
        assert load_graph(buf).vertex("A").lifespan.end == FOREVER


class TestStats:
    def test_transit_stats(self):
        stats = dataset_stats(transit_graph(), "transit", horizon=10)
        assert stats.interval_v == 6
        assert stats.interval_e == 7
        assert stats.num_snapshots == 10
        assert stats.multi_snapshot_v == 60  # 6 perpetual vertices × 10
        assert stats.transformed_v > stats.interval_v

    def test_lifespan_shapes_match_dataset_design(self):
        """The surrogates must preserve Table 1's lifespan character."""
        g_unit = gplus(scale=0.3)
        g_full = twitter(scale=0.3)
        s_unit = dataset_stats(g_unit, "gplus")
        s_full = dataset_stats(g_full, "twitter")
        assert s_unit.avg_edge_lifespan == 1.0
        assert s_full.avg_edge_lifespan == s_full.num_snapshots
        assert s_full.avg_property_lifespan < s_full.avg_edge_lifespan

    def test_usrn_static_topology(self):
        g = usrn(scale=0.4)
        stats = dataset_stats(g, "usrn")
        assert stats.largest_snapshot_e == stats.interval_e

    def test_memory_footprint_ordering(self):
        """Fig. 6a: transformed > interval for long-lifespan graphs."""
        g = twitter(scale=0.3)
        footprint = memory_footprint(g)
        assert footprint["transformed"] > footprint["interval"]
        assert footprint["multi_snapshot_total"] >= footprint["largest_snapshot"]


@st.composite
def random_temporal_graph(draw):
    from repro.graph.builder import TemporalGraphBuilder

    n = draw(st.integers(min_value=1, max_value=8))
    horizon = 12
    b = TemporalGraphBuilder()
    for i in range(n):
        b.add_vertex(f"v{i}", 0, horizon)
    n_edges = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        start = draw(st.integers(min_value=0, max_value=horizon - 1))
        end = draw(st.integers(min_value=start + 1, max_value=horizon))
        cost = draw(st.integers(min_value=1, max_value=9))
        b.add_edge(f"v{src}", f"v{dst}", start, end,
                   props={"travel-cost": [(start, end, cost)], "travel-time": 1})
    return b.build()


@given(random_temporal_graph())
@settings(max_examples=60, deadline=None)
def test_io_roundtrip_property(graph):
    buf = io.StringIO()
    dump_graph(graph, buf)
    buf.seek(0)
    loaded = load_graph(buf)
    assert loaded.num_vertices == graph.num_vertices
    assert loaded.num_edges == graph.num_edges
    for e in graph.edges():
        e2 = loaded.edge(e.eid)
        assert (e2.src, e2.dst, e2.lifespan) == (e.src, e.dst, e.lifespan)
        assert e2.properties.values_at(e.lifespan.start) == \
            e.properties.values_at(e.lifespan.start)
