"""Tests for the SNAP / contact-sequence parsers."""

import io

import pytest

from repro.core.interval import Interval
from repro.graph.parsers import load_contact_sequence, load_snap_edgelist

SNAP_SAMPLE = """\
# src dst unixtime
alice bob 1000
alice bob 1060
alice bob 1120
bob carol 1300
carol alice 1000
alice bob 1400
"""


class TestSnapEdgelist:
    def test_basic_bucketing(self):
        g = load_snap_edgelist(io.StringIO(SNAP_SAMPLE), bucket=60)
        # Times normalise to buckets 0..6 (raw 1000..1400, bucket 60).
        assert sorted(g.vertex_ids()) == ["alice", "bob", "carol"]
        assert g.time_horizon() == 7
        # alice→bob events at buckets 0,1,2 merge into [0,3); 1400 → [6,7).
        ab = sorted(
            (e.lifespan for e in g.out_edges("alice") if e.dst == "bob"),
            key=lambda iv: iv.start,
        )
        assert ab == [Interval(0, 3), Interval(6, 7)]

    def test_merge_gap_bridges_silence(self):
        g = load_snap_edgelist(io.StringIO(SNAP_SAMPLE), bucket=60, merge_gap=5)
        ab = [e.lifespan for e in g.out_edges("alice") if e.dst == "bob"]
        assert ab == [Interval(0, 7)]

    def test_vertex_lifespan_policies(self):
        g_horizon = load_snap_edgelist(io.StringIO(SNAP_SAMPLE), bucket=60)
        assert g_horizon.vertex("carol").lifespan == Interval(0, 7)
        g_activity = load_snap_edgelist(
            io.StringIO(SNAP_SAMPLE), bucket=60, vertex_lifespan="activity"
        )
        # carol's events: bucket 0 (carol→alice) and bucket 5 (bob→carol).
        assert g_activity.vertex("carol").lifespan == Interval(0, 6)

    def test_undirected_mirrors_edges(self):
        g = load_snap_edgelist(io.StringIO(SNAP_SAMPLE), bucket=60, directed=False)
        assert any(e.dst == "alice" for e in g.out_edges("bob"))

    def test_bad_policy_and_empty(self):
        with pytest.raises(ValueError, match="vertex_lifespan"):
            load_snap_edgelist(io.StringIO(SNAP_SAMPLE), vertex_lifespan="weird")
        with pytest.raises(ValueError, match="no events"):
            load_snap_edgelist(io.StringIO("# nothing\n"))
        with pytest.raises(ValueError, match="expected"):
            load_snap_edgelist(io.StringIO("alice bob\n"))

    def test_parsed_graph_runs_icm(self):
        from repro.algorithms.td.reach import TemporalReachability, is_reachable
        from repro.core.engine import IntervalCentricEngine

        g = load_snap_edgelist(io.StringIO(SNAP_SAMPLE), bucket=60)
        result = IntervalCentricEngine(g, TemporalReachability("alice")).run()
        assert is_reachable(result.states["carol"])  # alice→bob→carol in time


class TestContactSequence:
    SAMPLE = "10 x y\n12 y z\n10 z x\n"

    def test_parse(self):
        g = load_contact_sequence(io.StringIO(self.SAMPLE))
        assert g.num_vertices == 3
        assert g.num_edges == 3
        xy = [e for e in g.out_edges("x") if e.dst == "y"][0]
        assert xy.lifespan == Interval(0, 1)
        assert g.time_horizon() == 3

    def test_duration(self):
        g = load_contact_sequence(io.StringIO(self.SAMPLE), duration=3)
        xy = [e for e in g.out_edges("x") if e.dst == "y"][0]
        assert xy.lifespan == Interval(0, 3)

    def test_empty(self):
        with pytest.raises(ValueError, match="no contacts"):
            load_contact_sequence(io.StringIO("# none\n"))
