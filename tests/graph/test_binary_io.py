"""Tests for the binary temporal graph format."""

import io

import pytest
from hypothesis import given, settings

from repro.datasets import gplus, transit_graph, twitter
from repro.graph.binary_io import dump_graph_binary, load_graph_binary
from repro.graph.io import dump_graph

from .test_io_stats_properties import random_temporal_graph


def _equivalent(a, b) -> None:
    assert a.num_vertices == b.num_vertices
    assert a.num_edges == b.num_edges
    for v in a.vertices():
        v2 = b.vertex(str(v.vid))
        assert v2.lifespan == v.lifespan
        for label in v.properties:
            assert v2.properties.timeline(label).entries() == \
                v.properties.timeline(label).entries()
    for e in a.edges():
        e2 = b.edge(str(e.eid))
        assert (str(e.src), str(e.dst), e.lifespan) == (e2.src, e2.dst, e2.lifespan)
        for label in e.properties:
            assert e2.properties.timeline(label).entries() == \
                e.properties.timeline(label).entries()


class TestRoundtrip:
    @pytest.mark.parametrize("factory", [transit_graph, lambda: gplus(0.3), lambda: twitter(0.3)])
    def test_buffer_roundtrip(self, factory):
        graph = factory()
        buf = io.BytesIO()
        dump_graph_binary(graph, buf)
        buf.seek(0)
        _equivalent(graph, load_graph_binary(buf))

    def test_file_roundtrip(self, tmp_path):
        graph = transit_graph()
        path = tmp_path / "g.itgr"
        written = dump_graph_binary(graph, path)
        assert path.stat().st_size == written
        _equivalent(graph, load_graph_binary(path))

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="not an ITGR"):
            load_graph_binary(io.BytesIO(b"NOPE" + b"\x00" * 10))

    def test_trailing_bytes(self):
        buf = io.BytesIO()
        dump_graph_binary(transit_graph(), buf)
        raw = buf.getvalue() + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            load_graph_binary(io.BytesIO(raw))


class TestCompactness:
    @pytest.mark.parametrize("factory", [lambda: gplus(0.5), lambda: twitter(0.5)])
    def test_substantially_smaller_than_text(self, factory):
        graph = factory()
        text = io.StringIO()
        dump_graph(graph, text)
        binary = io.BytesIO()
        dump_graph_binary(graph, binary)
        ratio = len(binary.getvalue()) / len(text.getvalue().encode("utf-8"))
        assert ratio < 0.5


@given(random_temporal_graph())
@settings(max_examples=60, deadline=None)
def test_binary_roundtrip_property(graph):
    buf = io.BytesIO()
    dump_graph_binary(graph, buf)
    buf.seek(0)
    _equivalent(graph, load_graph_binary(buf))
