"""Prometheus text exposition-format conformance for `prometheus_text`.

Pins the parts of the format a real scraper is strict about: metric-name
and label-name charsets, label-value escaping (backslash, double quote,
line feed), `# HELP` before `# TYPE` before the samples of each family
with no interleaving, counter `_total` / seconds `_seconds` suffix
conventions, and histogram series shape (`_bucket` cumulative and
non-decreasing in `le` order, `+Inf` bucket equal to `_count`).
"""

import re

import pytest

from repro.obs.exporters import prometheus_text
from repro.obs.registry import Histogram
from repro.runtime.metrics import RunMetrics
from repro.serve.service import ServeMetrics

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$")


def run_metrics(**overrides):
    fields = dict(platform="GRAPHITE", algorithm="BFS", graph="transit",
                  executor="serial")
    fields.update(overrides)
    return RunMetrics(**fields)


def serve_metrics():
    m = ServeMetrics(graph="transit", executor="serial")
    for latency in (0.002, 0.002, 0.4, 7.0):
        m.query_latency.observe(latency)
    m.queries_served = 4
    return m


def families(text):
    """(name, help_line_idx, type_line_idx, sample_lines) per family."""
    out = {}
    for i, line in enumerate(text.splitlines()):
        if line.startswith("# HELP "):
            name = line.split()[2]
            out.setdefault(name, {"samples": []})["help"] = i
        elif line.startswith("# TYPE "):
            name = line.split()[2]
            out.setdefault(name, {"samples": []})["type"] = i
        elif line:
            match = SAMPLE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            base = match.group(1)
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base[: -len(suffix)] in out:
                    base = base[: -len(suffix)]
                    break
            out.setdefault(base, {"samples": []})["samples"].append((i, line))
    return out


@pytest.mark.parametrize("metrics", [run_metrics(), serve_metrics()],
                         ids=["run", "serve"])
def test_names_conform_and_help_precedes_type_precedes_samples(metrics):
    text = prometheus_text(metrics)
    fams = families(text)
    assert fams, "no metric families emitted"
    for name, fam in fams.items():
        assert METRIC_NAME.match(name), f"bad metric name {name!r}"
        assert "help" in fam and "type" in fam, f"{name} missing HELP/TYPE"
        assert fam["samples"], f"{name} emitted no samples"
        first_sample = fam["samples"][0][0]
        assert fam["help"] < fam["type"] < first_sample
        # The family's block is contiguous: nothing else interleaves.
        indices = [fam["help"], fam["type"]] + [i for i, _ in fam["samples"]]
        assert indices == list(range(fam["help"], fam["help"] + len(indices)))


def test_label_values_are_escaped():
    nasty = 'transit "v2"\nwith\\slash'
    text = prometheus_text(run_metrics(graph=nasty))
    sample = next(l for l in text.splitlines()
                  if l.startswith("repro_messages_sent_total{"))
    assert '\n' not in sample  # splitlines guarantees it; the value survived
    assert 'graph="transit \\"v2\\"\\nwith\\\\slash"' in sample
    for line in text.splitlines():
        match = SAMPLE.match(line) if not line.startswith("#") else None
        if match and match.group(2):
            for label in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)=',
                                    match.group(2)):
                assert LABEL_NAME.match(label)


def test_suffix_conventions():
    text = prometheus_text(serve_metrics())
    # counters carry _total, time/histogram kinds carry _seconds — and a
    # spec already named *_seconds is never doubled.
    assert "# TYPE repro_queries_served_total counter" in text
    assert "# TYPE repro_query_seconds gauge" in text
    assert "repro_query_seconds_seconds" not in text
    assert "repro_query_latency_seconds_seconds" not in text
    assert "# TYPE repro_query_latency_seconds histogram" in text


def test_histogram_series_shape():
    text = prometheus_text(serve_metrics())
    buckets = [l for l in text.splitlines()
               if l.startswith("repro_query_latency_seconds_bucket")]
    assert buckets, "histogram emitted no _bucket series"
    counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
    assert counts == sorted(counts), "bucket counts must be cumulative"
    assert 'le="+Inf"' in buckets[-1]
    count_line = next(l for l in text.splitlines()
                      if l.startswith("repro_query_latency_seconds_count"))
    assert counts[-1] == int(count_line.rsplit(" ", 1)[1]) == 4
    sum_line = next(l for l in text.splitlines()
                    if l.startswith("repro_query_latency_seconds_sum"))
    assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(7.404)
    # TYPE declares the family histogram, on the base name.
    assert "# TYPE repro_query_latency_seconds histogram" in text


def test_histogram_cumulative_counts_are_monotone_per_unit():
    h = Histogram(bounds=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    cumulative = h.cumulative()
    assert [c for _, c in cumulative] == [1, 3, 4, 5]
    assert cumulative[-1][0] == float("inf")
    assert h.count == 5
    assert h.sum == pytest.approx(56.05)
