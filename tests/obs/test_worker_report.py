"""`render_workers`: the per-worker straggler table from worker_span records.

Synthetic traces pin down the arithmetic (aggregation across supersteps,
max/mean imbalance ratios, replay-wins semantics, the empty-trace
message); a real 2-process run checks the renderer over live schema-v5
output end to end.
"""

from repro.algorithms import run_algorithm
from repro.datasets import transit_graph
from repro.obs.events import WORKER_SPAN_PHASES
from repro.obs.exporters import read_trace, render_workers
from repro.runtime.cluster import SimulatedCluster


def span(superstep, worker, **seconds):
    wall = {f"{phase}_s": seconds.get(phase, 0.0)
            for phase in WORKER_SPAN_PHASES}
    wall["total_s"] = sum(wall.values())
    return {
        "v": 5, "seq": 0, "type": "worker_span", "superstep": superstep,
        "data": {"worker": worker, "phases": list(WORKER_SPAN_PHASES)},
        "wall": wall,
    }


def test_rows_aggregate_across_supersteps_per_worker():
    records = [
        span(1, 0, compute=0.010, scatter=0.002),
        span(1, 1, compute=0.020, barrier_wait=0.001),
        span(2, 0, compute=0.010),
        span(2, 1, compute=0.040),
    ]
    table = render_workers(records)
    lines = table.splitlines()
    assert lines[0].split() == [
        "worker", *WORKER_SPAN_PHASES, "total",
    ]
    row0 = lines[1].split()
    row1 = lines[2].split()
    assert row0[0] == "0" and row1[0] == "1"
    assert row0[1] == "20.000" and row0[2] == "ms"   # compute summed
    assert row1[1] == "60.000"
    # totals: worker 0 = 22 ms, worker 1 = 61 ms
    assert row0[-2] == "22.000" and row1[-2] == "61.000"


def test_imbalance_ratio_is_max_over_mean():
    records = [span(1, 0, compute=0.010), span(1, 1, compute=0.030)]
    table = render_workers(records)
    ratio_line = next(l for l in table.splitlines() if "max/mean" in l)
    # compute: max 30ms / mean 20ms = 1.50x; idle phases render n/a.
    assert "1.50x" in ratio_line
    assert "n/a" in ratio_line


def test_replayed_superstep_latest_emission_wins():
    records = [
        span(1, 0, compute=0.500),   # pre-rollback emission, discarded
        span(1, 0, compute=0.010),   # replay of the same (step, worker)
    ]
    table = render_workers(records)
    assert "10.000 ms" in table
    assert "500.000 ms" not in table
    assert "1 spans over 1 superstep(s)" in table


def test_span_free_trace_renders_notice():
    assert "no worker_span records" in render_workers([])


def test_real_parallel_trace_renders_one_row_per_worker(tmp_path):
    path = tmp_path / "pr-parallel.trace"
    run_algorithm(
        "PR", "GRAPHITE", transit_graph(),
        cluster=SimulatedCluster(5), graph_name="transit",
        icm_options={"executor": "parallel", "executor_processes": 2},
        observe=str(path),
    )
    table = render_workers(read_trace(path))
    lines = table.splitlines()
    assert lines[1].lstrip().startswith("0 ")
    assert lines[2].lstrip().startswith("1 ")
    assert "2 worker(s)" in table
