"""Trace durability: a run killed without warning leaves a readable trace.

`JsonlTraceWriter` flushes every record as it is written, and
`read_trace` drops (with a warning) at most one torn trailing line — so
SIGKILLing a live parallel run mid-superstep must still leave a trace
that post-mortem tooling (`repro report`, `scripts/diff_traces.py`) can
load.  Mid-file corruption stays a hard error.
"""

import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.algorithms import run_algorithm
from repro.datasets import transit_graph
from repro.obs.events import encode_event, validate_event
from repro.obs.exporters import read_trace
from repro.obs.observers import JsonlTraceWriter
from repro.runtime.cluster import SimulatedCluster

SRC = str(Path(__file__).resolve().parents[2] / "src")

# A real 2-process run whose trace writer sleeps after each record, so
# the parent can SIGKILL it mid-superstep with certainty.
CHILD = """
import sys, time
sys.path.insert(0, {src!r})
from repro.algorithms import run_algorithm
from repro.datasets import transit_graph
from repro.obs.observers import JsonlTraceWriter
from repro.runtime.cluster import SimulatedCluster

class SlowWriter(JsonlTraceWriter):
    def on_event(self, record):
        super().on_event(record)
        time.sleep(0.15)

run_algorithm(
    "BFS", "GRAPHITE", transit_graph(),
    cluster=SimulatedCluster(5), graph_name="transit",
    icm_options={{"executor": "parallel", "executor_processes": 2}},
    observe=SlowWriter(sys.argv[1]),
)
"""


def _serial_trace(tmp_path):
    path = tmp_path / "serial.trace"
    run_algorithm(
        "BFS", "GRAPHITE", transit_graph(),
        cluster=SimulatedCluster(5), graph_name="transit",
        icm_options={"executor": "serial"}, observe=str(path),
    )
    return path


def test_sigkilled_parallel_run_leaves_readable_trace(tmp_path):
    path = tmp_path / "killed.trace"
    proc = subprocess.Popen(
        [sys.executable, "-c", CHILD.format(src=SRC), str(path)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # Wait until the trace is past superstep 1, then kill without
        # warning while events are still streaming.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if path.exists() and len(path.read_bytes().splitlines()) >= 8:
                break
            time.sleep(0.05)
        else:
            pytest.fail("child never wrote 8 trace records")
    finally:
        proc.kill()
        proc.wait()
    assert proc.returncode != 0  # killed, not completed

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # a torn trailing line may warn
        records = read_trace(path)
    assert records, "killed run left no readable records"
    assert records[0]["type"] == "run_start"
    assert records[-1]["type"] != "run_end"  # it really died mid-run
    assert [r["seq"] for r in records] == list(range(len(records)))
    for record in records:
        validate_event(record)


def test_truncated_trailing_record_dropped_with_warning(tmp_path):
    path = _serial_trace(tmp_path)
    intact = read_trace(path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
    with pytest.warns(UserWarning, match="truncated trailing trace record"):
        survivors = read_trace(path)
    assert survivors == intact[:-1]


def test_mid_file_corruption_still_raises(tmp_path):
    path = _serial_trace(tmp_path)
    lines = path.read_bytes().splitlines()
    lines[2] = lines[2][: len(lines[2]) // 2]  # tear a middle record
    path.write_bytes(b"\n".join(lines) + b"\n")
    with pytest.raises(ValueError):
        read_trace(path)


def test_writer_flushes_every_record_as_written(tmp_path):
    source = read_trace(_serial_trace(tmp_path))
    path = tmp_path / "replay.trace"
    writer = JsonlTraceWriter(path)
    for i, record in enumerate(source, start=1):
        writer.on_event(record)
        # Without any close(), the file already holds i complete lines.
        lines = path.read_bytes().splitlines()
        assert len(lines) == i
        assert lines[-1] == encode_event(record).encode("utf-8")
    writer.close()
