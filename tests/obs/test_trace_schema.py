"""Trace schema: every emitted event validates; serial ≡ parallel logically.

Runs three representative algorithms (a TI flood, a TD fixpoint and
PageRank's aggregator-terminated iteration) under both executors with a
JSON-lines trace attached, then checks the full schema contract on every
record and the logical serial↔parallel equivalence that CI diffs.
"""

import pytest

from repro.algorithms import run_algorithm
from repro.datasets import transit_graph
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    RUN_LEVEL_TYPES,
    WORKER_SPAN_PHASES,
    validate_event,
)
from repro.obs.exporters import (
    logical_sequence,
    read_trace,
    render_report,
    render_timeline,
    split_runs,
)
from repro.runtime.cluster import SimulatedCluster

ALGORITHMS = ("BFS", "SSSP", "PR")


def _trace(tmp_path, algorithm, executor):
    path = tmp_path / f"{algorithm}-{executor}.trace"
    icm_options = {"executor": executor}
    if executor == "parallel":
        icm_options["executor_processes"] = 2
    run_algorithm(
        algorithm, "GRAPHITE", transit_graph(),
        cluster=SimulatedCluster(5), graph_name="transit",
        icm_options=icm_options, observe=str(path),
    )
    return read_trace(path)


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("traces")
    return {
        (algorithm, executor): _trace(tmp_path, algorithm, executor)
        for algorithm in ALGORITHMS
        for executor in ("serial", "parallel")
    }


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("executor", ("serial", "parallel"))
def test_every_record_validates(traces, algorithm, executor):
    records = traces[(algorithm, executor)]
    assert records, "trace must not be empty"
    for record in records:
        validate_event(record)  # exact key set, versions, payload schema
        assert record["v"] == EVENT_SCHEMA_VERSION


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_trace_structure(traces, algorithm):
    records = traces[(algorithm, "serial")]
    assert records[0]["type"] == "run_start"
    assert records[-1]["type"] == "run_end"
    assert [r["seq"] for r in records] == list(range(len(records)))

    start, end = records[0], records[-1]
    assert start["data"]["algorithm"] == algorithm
    assert start["data"]["platform"] == "GRAPHITE"
    assert start["data"]["graph"] == "transit"

    # Each superstep contributes the full phase cycle, in order; since
    # schema v5 the barrier additionally publishes one worker_span per
    # executor worker (exactly one on the serial executor).
    per_step = {}
    for record in records[1:-1]:
        per_step.setdefault(record["superstep"], []).append(record["type"])
    assert sorted(per_step) == list(range(1, end["data"]["supersteps"] + 1))
    for types in per_step.values():
        assert types == ["superstep_start", "compute_phase",
                         "scatter_phase", "barrier_exchange", "worker_span",
                         "superstep_end"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_run_end_totals_match_phase_sums(traces, algorithm):
    records = traces[(algorithm, "serial")]
    end = records[-1]["data"]
    compute = sum(r["data"]["compute_calls"] for r in records
                  if r["type"] == "compute_phase")
    messages = sum(r["data"]["messages"] for r in records
                   if r["type"] == "scatter_phase")
    assert compute == end["compute_calls"]
    assert messages == end["messages_sent"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_serial_parallel_logical_equivalence(traces, algorithm):
    serial = logical_sequence(traces[(algorithm, "serial")])
    parallel = logical_sequence(traces[(algorithm, "parallel")])
    assert serial == parallel


def _spans(records):
    return [r for r in records if r["type"] == "worker_span"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("executor", ("serial", "parallel"))
def test_worker_spans_cover_every_superstep(traces, algorithm, executor):
    """One worker_span per worker per superstep, in worker-id order —
    one for the serial executor, one per process for the parallel one."""
    records = traces[(algorithm, executor)]
    workers = 1 if executor == "serial" else 2
    supersteps = records[-1]["data"]["supersteps"]
    spans = _spans(records)
    assert len(spans) == workers * supersteps
    for step in range(1, supersteps + 1):
        step_spans = [s for s in spans if s["superstep"] == step]
        assert [s["data"]["worker"] for s in step_spans] == list(range(workers))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("executor", ("serial", "parallel"))
def test_worker_span_wall_invariants(traces, algorithm, executor):
    """Every span carries the full phase vocabulary and non-negative
    wall durations that sum exactly to its total."""
    for span in _spans(traces[(algorithm, executor)]):
        assert tuple(span["data"]["phases"]) == WORKER_SPAN_PHASES
        wall = span["wall"]
        total = wall["total_s"]
        assert total >= 0.0
        for phase in WORKER_SPAN_PHASES:
            assert 0.0 <= wall[f"{phase}_s"] <= total + 1e-9
        assert sum(wall[f"{p}_s"] for p in WORKER_SPAN_PHASES) == \
            pytest.approx(total)


def test_worker_spans_nested_within_superstep(traces):
    """Spans are emitted inside their superstep's bracket: strictly after
    that superstep's barrier_exchange and before its superstep_end."""
    for records in traces.values():
        by_seq = {r["seq"]: r for r in records}
        brackets = {}
        for record in records:
            if record["type"] == "barrier_exchange":
                brackets.setdefault(record["superstep"], {})["lo"] = record["seq"]
            elif record["type"] == "superstep_end":
                brackets.setdefault(record["superstep"], {})["hi"] = record["seq"]
        for span in _spans(records):
            bracket = brackets[span["superstep"]]
            assert bracket["lo"] < span["seq"] < bracket["hi"]
            assert by_seq[bracket["lo"]]["superstep"] == span["superstep"]


def test_superstep_events_use_positive_steps(traces):
    for records in traces.values():
        for record in records:
            if record["type"] in RUN_LEVEL_TYPES:
                assert record["superstep"] is None
            else:
                assert record["superstep"] >= 1


def test_schema_covers_recovery_events():
    # The durability types are part of the v1 schema even though a
    # fault-free run never emits them.
    for etype in ("checkpoint_write", "worker_death", "rollback"):
        assert etype in EVENT_TYPES


def test_renderers_accept_real_traces(traces):
    records = traces[("SSSP", "serial")]
    assert len(split_runs(records)) == 1
    report = render_report(records)
    assert "SSSP" in report and "GRAPHITE" in report
    supersteps = records[-1]["data"]["supersteps"]
    timeline = render_timeline(records)
    assert len(timeline.splitlines()) == 1 + supersteps  # header + one row/step


def test_compare_trace_attributes_every_platform(tmp_path):
    """`api.compare(..., observe=path)` writes one shared trace in which
    every run — GRAPHITE's native events and the synthesized baseline
    brackets — carries its platform tag, so `repro report` and
    `scripts/diff_traces.py` can attribute multi-platform traces."""
    from repro import api
    from repro.algorithms.runners import platforms_for

    path = tmp_path / "compare.trace"
    api.compare("EAT", transit_graph(), workers=5, graph_name="transit",
                observe=str(path))
    records = read_trace(path)
    for record in records:
        validate_event(record)
    platforms = [r["data"]["platform"] for r in records
                 if r["type"] == "run_start"]
    assert platforms == list(platforms_for("EAT"))
    # Each run is a complete, splittable bracket with totals.
    runs = split_runs(records)
    assert len(runs) == len(platforms)
    for run in runs:
        assert run[-1]["type"] == "run_end"
        assert run[-1]["data"]["supersteps"] >= 1
    # And the report renderer shows one attributed row per platform.
    report = render_report(records)
    for platform in platforms:
        assert platform in report
