"""Unit tests for the vertex/edge/master contexts."""

import pytest

from repro.core.context import EdgeContext, MasterContext, VertexContext
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.core.engine import IntervalCentricEngine
from repro.graph.builder import TemporalGraphBuilder


def degree_graph():
    b = TemporalGraphBuilder()
    b.add_vertex("a", 0, 12)
    b.add_vertex("b", 0, 12)
    b.add_vertex("c", 0, 12)
    b.add_edge("a", "b", 0, 8, eid="e1")
    b.add_edge("a", "b", 4, 12, eid="e2")
    b.add_edge("a", "c", 6, 10, eid="e3")
    return b.build()


class Probe(IntervalProgram):
    """Captures its context for white-box assertions."""

    name = "probe"
    captured = None

    def compute(self, ctx, interval, state, messages):
        if ctx.vertex_id == "a" and ctx.superstep == 1:
            Probe.captured = ctx

    def scatter(self, ctx, edge, interval, state):
        return None


class TestVertexContext:
    @pytest.fixture()
    def ctx(self):
        # Captures the live context object from inside compute — only
        # meaningful in-process, so the serial executor is pinned.
        IntervalCentricEngine(degree_graph(), Probe(), executor="serial").run()
        return Probe.captured

    def test_static_attributes(self, ctx):
        assert ctx.vertex_id == "a"
        assert ctx.lifespan == Interval(0, 12)
        assert ctx.num_vertices == 3
        assert len(ctx.out_edges()) == 3

    def test_out_degree_with_window(self, ctx):
        assert ctx.out_degree() == 3
        assert ctx.out_degree(Interval(0, 2)) == 1
        assert ctx.out_degree(Interval(5, 7)) == 3
        assert ctx.out_degree(Interval(10, 12)) == 1

    def test_out_degree_segments(self, ctx):
        segments = ctx.out_degree_segments(Interval(0, 12))
        assert segments == [
            (Interval(0, 4), 1),
            (Interval(4, 6), 2),
            (Interval(6, 8), 3),
            (Interval(8, 10), 2),
            (Interval(10, 12), 1),
        ]

    def test_out_degree_segments_clipped(self, ctx):
        segments = ctx.out_degree_segments(Interval(5, 9))
        assert segments[0] == (Interval(5, 6), 2)
        assert segments[-1] == (Interval(8, 9), 2)

    def test_state_access(self, ctx):
        assert ctx.state_at(3) is None  # probe never sets state

    def test_repr(self, ctx):
        assert "a" in repr(ctx)


class TestEdgeContext:
    def test_accessors(self):
        g = degree_graph()
        edge = g.edge("e1")
        ec = EdgeContext(edge, Interval(2, 5), {"w": 7})
        assert ec.eid == "e1"
        assert (ec.src, ec.dst) == ("a", "b")
        assert ec.lifespan == Interval(0, 8)
        assert ec.interval == Interval(2, 5)
        assert ec.get("w") == 7
        assert ec.get("missing", "dflt") == "dflt"
        assert "e1" in repr(ec)


class TestMasterContext:
    def test_aggregate_access_and_override(self):
        master = MasterContext(3, {"x": 10}, num_active=5)
        assert master.superstep == 3
        assert master.num_active_vertices == 5
        assert master.get_aggregate("x") == 10
        assert master.get_aggregate("y", -1) == -1
        master.set_aggregate("y", 99)
        assert master._overrides == {"y": 99}
        assert not master._halt
        master.halt()
        assert master._halt


class TestVertexPropertyAccess:
    def test_vertex_property(self):
        b = TemporalGraphBuilder()
        b.add_vertex("a", 0, 10, props={"kind": [(0, 5, "x"), (5, 10, "y")]})
        g = b.build()

        seen = {}

        class P(IntervalProgram):
            name = "p"

            def compute(self, ctx, interval, state, messages):
                seen[3] = ctx.vertex_property("kind", 3)
                seen[7] = ctx.vertex_property("kind", 7)

        IntervalCentricEngine(g, P(), executor="serial").run()
        assert seen == {3: "x", 7: "y"}
