"""Unit tests for time-join and time-warp, anchored on the paper's Fig. 3."""

from repro.core.interval import Interval
from repro.core.warp import time_join, time_warp, warp_boundaries


def iv(a, b):
    return Interval(a, b)


class TestTimeJoin:
    def test_basic_overlap(self):
        out = time_join([(iv(0, 5), "s")], [(iv(3, 8), "m")])
        assert out == [(iv(3, 5), "s", "m")]

    def test_disjoint(self):
        assert time_join([(iv(0, 3), "s")], [(iv(3, 8), "m")]) == []

    def test_paper_m2_splits_across_states(self):
        """m2 = [2,7) overlaps s1 and s2 → ⟨[2,5),s1,m2⟩ and ⟨[5,7),s2,m2⟩."""
        states = [(iv(0, 5), "s1"), (iv(5, 9), "s2")]
        out = time_join(states, [(iv(2, 7), "m2")])
        assert (iv(2, 5), "s1", "m2") in out
        assert (iv(5, 7), "s2", "m2") in out
        assert len(out) == 2

    def test_cross_product_on_full_overlap(self):
        out = time_join(
            [(iv(0, 10), "a"), (iv(0, 10), "b")],
            [(iv(2, 4), 1), (iv(3, 6), 2)],
        )
        assert len(out) == 4

    def test_unsorted_inputs(self):
        out = time_join(
            [(iv(6, 9), "s2"), (iv(0, 6), "s1")],
            [(iv(8, 12), "m2"), (iv(1, 2), "m1")],
        )
        assert (iv(1, 2), "s1", "m1") in out
        assert (iv(8, 9), "s2", "m2") in out
        assert len(out) == 2


class TestWarpFig3:
    """The detailed warp example of Sec. IV-B (Fig. 3): 3 partitioned
    states, 5 messages, boundaries {0, 2, 4, 5, 7, 9, 10}."""

    STATES = [(iv(0, 5), "s1"), (iv(5, 9), "s2"), (iv(9, 10), "s3")]
    MESSAGES = [
        (iv(0, 4), "m1"),
        (iv(2, 7), "m2"),
        (iv(7, 9), "m3"),
        (iv(9, 10), "m4"),
        (iv(5, 7), "m5"),
    ]

    def test_full_output(self):
        out = time_warp(self.STATES, self.MESSAGES)
        expected = [
            (iv(0, 2), "s1", ["m1"]),
            (iv(2, 4), "s1", ["m1", "m2"]),
            (iv(4, 5), "s1", ["m2"]),
            (iv(5, 7), "s2", ["m2", "m5"]),
            (iv(7, 9), "s2", ["m3"]),
            (iv(9, 10), "s3", ["m4"]),
        ]
        assert [(t, s, sorted(g)) for t, s, g in out] == expected

    def test_boundaries(self):
        bounds = warp_boundaries(iv(0, 5), self.MESSAGES)
        assert bounds == [0, 2, 4, 5]


class TestWarpSemantics:
    def test_empty_inner_returns_nothing(self):
        assert time_warp([(iv(0, 5), "s")], []) == []

    def test_empty_outer_returns_nothing(self):
        assert time_warp([], [(iv(0, 5), "m")]) == []

    def test_no_overlap_omitted(self):
        """Triples with empty message groups are not produced (M_r ≠ ∅)."""
        out = time_warp([(iv(0, 10), "s")], [(iv(2, 4), "m")])
        assert out == [(iv(2, 4), "s", ["m"])]

    def test_message_duplicated_to_multiple_states(self):
        out = time_warp(
            [(iv(0, 5), "a"), (iv(5, 10), "b")],
            [(iv(3, 8), "m")],
        )
        assert out == [(iv(3, 5), "a", ["m"]), (iv(5, 8), "b", ["m"])]

    def test_maximal_merges_same_group_across_equal_states(self):
        """Adjacent partitions with equal value and identical groups merge."""
        out = time_warp(
            [(iv(0, 5), "same"), (iv(5, 10), "same")],
            [(iv(2, 8), "m")],
        )
        assert out == [(iv(2, 8), "same", ["m"])]

    def test_maximal_does_not_merge_different_states(self):
        out = time_warp(
            [(iv(0, 5), "a"), (iv(5, 10), "b")],
            [(iv(0, 10), "m")],
        )
        assert len(out) == 2

    def test_equal_valued_messages_meeting_merge(self):
        """Two distinct messages with equal values meeting at a boundary
        still satisfy maximality (value-set equality, not identity)."""
        out = time_warp(
            [(iv(0, 10), "s")],
            [(iv(0, 5), 42), (iv(5, 10), 42)],
        )
        assert out == [(iv(0, 10), "s", [42])]

    def test_unbounded_message(self):
        out = time_warp(
            [(iv(0, 4), "x"), (iv(4, Interval(0).end), "y")],
            [(Interval(2), "m")],
        )
        assert out[0] == (iv(2, 4), "x", ["m"])
        assert out[1][0] == Interval(4)
        assert out[1][1] == "y"

    def test_sssp_superstep2_warp_at_B(self):
        """Paper Sec. IV-A3: B's prior state ⟨[0,∞),∞⟩ with messages
        ⟨[4,∞),4⟩ and ⟨[6,∞),3⟩ warps to [4,6)·{4} and [6,∞)·{3,4}."""
        INF = float("inf")
        out = time_warp(
            [(Interval(0), INF)],
            [(Interval(4), 4), (Interval(6), 3)],
        )
        assert [(t, sorted(g)) for t, _, g in out] == [
            (iv(4, 6), [4]),
            (Interval(6), [3, 4]),
        ]

    def test_sssp_superstep3_warp_at_E(self):
        """E's prior state ⟨[0,∞),∞⟩ with ⟨[9,∞),5⟩ and ⟨[6,∞),7⟩ warps
        to ⟨[6,9),∞,{7}⟩ and ⟨[9,∞),∞,{5,7}⟩."""
        INF = float("inf")
        out = time_warp(
            [(Interval(0), INF)],
            [(Interval(9), 5), (Interval(6), 7)],
        )
        assert [(t, sorted(g)) for t, _, g in out] == [
            (iv(6, 9), [7]),
            (Interval(9), [5, 7]),
        ]


class TestWarpCombiner:
    def test_combiner_folds_groups(self):
        out = time_warp(
            [(iv(0, 10), "s")],
            [(iv(0, 6), 5), (iv(4, 10), 3)],
            combine=min,
        )
        assert out == [
            (iv(0, 4), "s", [5]),
            (iv(4, 6), "s", [3]),
            (iv(6, 10), "s", [3]),
        ]

    def test_combined_merge_is_positional_not_multiset(self):
        """Regression: fold 2/count 1 next to fold 1/count 2 must NOT merge
        (a multiset comparison of the [folded, count] pairs would)."""
        out = time_warp(
            [(iv(0, 10), "s")],
            [(Interval(4), 2), (Interval(7), 1)],
            combine=min,
        )
        assert [(t, g) for t, _, g in out] == [
            (iv(4, 7), [2]),
            (iv(7, 10), [1]),
        ]

    def test_combiner_matches_unfolded_fold(self):
        states = [(iv(0, 4), "a"), (iv(4, 12), "b")]
        msgs = [(iv(1, 9), 7), (iv(3, 5), 2), (iv(8, 12), 1)]
        folded = time_warp(states, msgs, combine=min)
        plain = time_warp(states, msgs)
        # Same cover; each folded value equals min of the plain group.
        assert [t for t, _, _ in folded] == [t for t, _, _ in plain]
        for (t1, s1, g1), (t2, s2, g2) in zip(folded, plain):
            assert s1 == s2
            assert g1 == [min(g2)]
