"""Direct unit tests for the engine's warm-start/rescatter surface
(the streaming layer's contract, tested here without the streaming
wrapper)."""

import pytest

from repro.algorithms.td.sssp import INFINITY, TemporalSSSP
from repro.core.engine import IntervalCentricEngine
from repro.core.interval import Interval
from repro.core.state import states_equal_pointwise
from repro.graph.builder import TemporalGraphBuilder


def chain(n=4, horizon=10, costs=None):
    b = TemporalGraphBuilder()
    for i in range(n):
        b.add_vertex(f"v{i}", 0, horizon)
    for i in range(n - 1):
        b.add_edge(f"v{i}", f"v{i + 1}", 0, horizon,
                   props={"travel-cost": (costs or {}).get(i, 1), "travel-time": 1})
    return b.build()


class TestWarmStart:
    def test_warm_run_with_no_changes_is_a_noop(self):
        g = chain()
        first = IntervalCentricEngine(g, TemporalSSSP("v0")).run()
        warm = IntervalCentricEngine(g, TemporalSSSP("v0")).run(
            warm_states=first.states
        )
        assert warm.metrics.compute_calls == 0
        for vid in g.vertex_ids():
            assert states_equal_pointwise(first.states[vid], warm.states[vid])

    def test_warm_states_are_copied_not_aliased(self):
        g = chain()
        first = IntervalCentricEngine(g, TemporalSSSP("v0")).run()
        warm = IntervalCentricEngine(g, TemporalSSSP("v0")).run(
            warm_states=first.states, rescatter={"v0": [Interval(0, 10)]}
        )
        assert warm.states["v1"] is not first.states["v1"]

    def test_rescatter_propagates_from_current_state(self):
        g = chain()
        first = IntervalCentricEngine(g, TemporalSSSP("v0")).run()
        warm = IntervalCentricEngine(g, TemporalSSSP("v0")).run(
            warm_states=first.states, rescatter={"v0": [Interval(0, 10)]}
        )
        # Re-delivery changes nothing (monotone) but does run the machinery.
        assert warm.metrics.messages_sent > 0
        for vid in g.vertex_ids():
            assert states_equal_pointwise(first.states[vid], warm.states[vid])

    def test_new_vertex_initialised_in_warm_run(self):
        g1 = chain(3)
        first = IntervalCentricEngine(g1, TemporalSSSP("v0")).run()
        # Rebuild with an extra vertex and edge, reusing old states.
        b = TemporalGraphBuilder()
        for i in range(4):
            b.add_vertex(f"v{i}", 0, 10)
        for i in range(2):
            b.add_edge(f"v{i}", f"v{i + 1}", 0, 10,
                       props={"travel-cost": 1, "travel-time": 1})
        b.add_edge("v2", "v3", 0, 10, props={"travel-cost": 1, "travel-time": 1})
        g2 = b.build()
        warm = IntervalCentricEngine(g2, TemporalSSSP("v0")).run(
            warm_states=first.states, rescatter={"v2": [Interval(0, 10)]}
        )
        scratch = IntervalCentricEngine(g2, TemporalSSSP("v0")).run()
        for vid in g2.vertex_ids():
            assert states_equal_pointwise(warm.states[vid], scratch.states[vid])

    def test_partial_rescatter_windows(self):
        """Rescattering only a window re-sends only messages for it."""
        g = chain(2)
        first = IntervalCentricEngine(g, TemporalSSSP("v0")).run()
        warm = IntervalCentricEngine(g, TemporalSSSP("v0")).run(
            warm_states=first.states, rescatter={"v0": [Interval(4, 6)]}
        )
        sends = warm.metrics.messages_sent
        full = IntervalCentricEngine(g, TemporalSSSP("v0")).run(
            warm_states=first.states, rescatter={"v0": [Interval(0, 10)]}
        )
        assert sends <= full.metrics.messages_sent
