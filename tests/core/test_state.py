"""Unit tests for PartitionedState: coverage, repartitioning, coalescing."""

import pytest

from repro.core.interval import FOREVER, Interval
from repro.core.state import PartitionedState, states_equal_pointwise


class TestBasics:
    def test_initial_single_partition(self):
        s = PartitionedState(Interval(0, 10), 42)
        assert len(s) == 1
        assert s.partitions() == [(Interval(0, 10), 42)]

    def test_value_at(self):
        s = PartitionedState(Interval(0, 10), "x")
        assert s.value_at(0) == "x"
        assert s.value_at(9) == "x"
        with pytest.raises(ValueError):
            s.value_at(10)

    def test_unbounded_lifespan(self):
        s = PartitionedState(Interval(0), None)
        assert s.value_at(10**9) is None


class TestSet:
    def test_interior_update_splits_into_three(self):
        s = PartitionedState(Interval(0, 10), 0)
        s.set(Interval(3, 6), 1)
        assert s.partitions() == [
            (Interval(0, 3), 0),
            (Interval(3, 6), 1),
            (Interval(6, 10), 0),
        ]

    def test_prefix_update(self):
        s = PartitionedState(Interval(0, 10), 0)
        s.set(Interval(0, 4), 1)
        assert s.partitions() == [(Interval(0, 4), 1), (Interval(4, 10), 0)]

    def test_suffix_update(self):
        s = PartitionedState(Interval(0, 10), 0)
        s.set(Interval(4, 10), 1)
        assert s.partitions() == [(Interval(0, 4), 0), (Interval(4, 10), 1)]

    def test_full_overwrite(self):
        s = PartitionedState(Interval(0, 10), 0)
        s.set(Interval(2, 5), 1)
        s.set(Interval(0, 10), 7)
        assert s.partitions() == [(Interval(0, 10), 7)]

    def test_update_spanning_partitions(self):
        s = PartitionedState(Interval(0, 12), 0)
        s.set(Interval(2, 4), 1)
        s.set(Interval(8, 10), 2)
        s.set(Interval(3, 9), 5)
        assert s.value_at(3) == 5
        assert s.value_at(8) == 5
        assert s.value_at(2) == 1
        assert s.value_at(9) == 2
        s.check_invariants()

    def test_outside_lifespan_rejected(self):
        s = PartitionedState(Interval(2, 8), 0)
        with pytest.raises(ValueError):
            s.set(Interval(0, 4), 1)
        with pytest.raises(ValueError):
            s.set(Interval(5, 9), 1)

    def test_paper_repartition_example(self):
        """Fig. 2: B's state, initially ∞, split into 3 by two updates."""
        inf = FOREVER
        s = PartitionedState(Interval(0, FOREVER), inf)
        s.set(Interval(4, 6), 4)
        s.set(Interval(6, FOREVER), 3)
        assert s.partitions() == [
            (Interval(0, 4), inf),
            (Interval(4, 6), 4),
            (Interval(6, FOREVER), 3),
        ]


class TestCoalescing:
    def test_adjacent_equal_values_merge(self):
        s = PartitionedState(Interval(0, 10), 0)
        s.set(Interval(2, 5), 1)
        s.set(Interval(5, 8), 1)
        assert (Interval(2, 8), 1) in s.partitions()
        assert len(s) == 3

    def test_no_coalesce_when_disabled(self):
        s = PartitionedState(Interval(0, 10), 0, coalesce=False)
        s.set(Interval(2, 5), 1)
        s.set(Interval(5, 8), 1)
        assert len(s) == 4

    def test_setting_same_value_collapses(self):
        s = PartitionedState(Interval(0, 10), 7)
        s.set(Interval(3, 5), 7)
        assert len(s) == 1


class TestSlices:
    def test_slices_clip(self):
        s = PartitionedState(Interval(0, 10), 0)
        s.set(Interval(4, 7), 1)
        assert s.slices(Interval(5, 9)) == [(Interval(5, 7), 1), (Interval(7, 9), 0)]

    def test_slices_outside(self):
        s = PartitionedState(Interval(3, 8), 0)
        assert s.slices(Interval(8, 12)) == []
        assert s.slices(Interval(0, 3)) == []

    def test_slices_partial_overlap_with_lifespan(self):
        s = PartitionedState(Interval(3, 8), "a")
        assert s.slices(Interval(0, 5)) == [(Interval(3, 5), "a")]


class TestHelpers:
    def test_update_fn(self):
        s = PartitionedState(Interval(0, 6), 10)
        s.set(Interval(2, 4), 20)
        s.update(Interval(0, 6), lambda iv, old: old + 1)
        assert s.value_at(0) == 11
        assert s.value_at(3) == 21

    def test_copy_is_independent(self):
        s = PartitionedState(Interval(0, 6), 0)
        clone = s.copy()
        clone.set(Interval(1, 2), 9)
        assert s.value_at(1) == 0

    def test_fill(self):
        s = PartitionedState(Interval(0, 6), 0)
        s.set(Interval(1, 2), 9)
        s.fill(5)
        assert s.partitions() == [(Interval(0, 6), 5)]

    def test_pointwise_equality_ignores_partitioning(self):
        a = PartitionedState(Interval(0, 10), 1, coalesce=False)
        b = PartitionedState(Interval(0, 10), 1, coalesce=False)
        a.set(Interval(0, 5), 1)  # split, same value
        assert states_equal_pointwise(a, b)
        b.set(Interval(3, 4), 2)
        assert not states_equal_pointwise(a, b)

    def test_pointwise_equality_different_lifespans(self):
        a = PartitionedState(Interval(0, 10), 1)
        b = PartitionedState(Interval(0, 9), 1)
        assert not states_equal_pointwise(a, b)
