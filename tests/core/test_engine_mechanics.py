"""Engine-mechanics tests: aggregators, master control, direct messaging,
fixed supersteps, guards and the suppression heuristics."""

import pytest

from repro.core.combiner import min_combiner
from repro.core.engine import IntervalCentricEngine, _complement
from repro.core.interval import FOREVER, Interval
from repro.core.messages import message
from repro.core.program import IntervalProgram
from repro.graph.builder import TemporalGraphBuilder


def line_graph(n=4, horizon=10):
    b = TemporalGraphBuilder()
    for i in range(n):
        b.add_vertex(f"v{i}", 0, horizon)
    for i in range(n - 1):
        b.add_edge(f"v{i}", f"v{i + 1}", 0, horizon)
    return b.build()


class Flood(IntervalProgram):
    name = "flood"

    def __init__(self):
        self.combiner = min_combiner()

    def init(self, ctx):
        ctx.set_state(ctx.lifespan, FOREVER)

    def compute(self, ctx, interval, state, messages):
        if ctx.superstep == 1:
            if ctx.vertex_id == "v0":
                ctx.set_state(interval, 0)
            return
        best = min(messages)
        if best < state:
            ctx.set_state(interval, best)

    def scatter(self, ctx, edge, interval, state):
        if state >= FOREVER:
            return None
        return [(interval, state + 1)]


class TestBasicLoop:
    def test_flood_on_line(self):
        result = IntervalCentricEngine(line_graph(), Flood()).run()
        for i in range(4):
            assert result.value_at(f"v{i}", 5) == i

    def test_supersteps_and_activation(self):
        result = IntervalCentricEngine(line_graph(), Flood()).run()
        m = result.metrics
        assert m.supersteps == 4  # one hop per superstep, halt when silent
        # superstep1: 4 calls; then one call per newly informed vertex.
        assert m.compute_calls == 4 + 3

    def test_max_superstep_guard(self):
        class PingPong(IntervalProgram):
            name = "pingpong"

            def init(self, ctx):
                ctx.set_state(ctx.lifespan, 0)

            def compute(self, ctx, interval, state, messages):
                ctx.set_state(interval, state + 1)

            def scatter(self, ctx, edge, interval, state):
                return [(interval, state)]

        b = TemporalGraphBuilder()
        b.add_vertices(["a", "b"])
        b.add_edge("a", "b")
        b.add_edge("b", "a")
        with pytest.raises(RuntimeError, match="exceeded"):
            IntervalCentricEngine(b.build(), PingPong(), max_supersteps=5).run()


class TestAggregatorsAndMaster:
    def test_aggregate_and_read_next_superstep(self):
        observed = {}

        class Agg(Flood):
            def aggregators(self):
                return {"reached": lambda a, b: a + b}

            def compute(self, ctx, interval, state, messages):
                if ctx.superstep > 1:
                    observed[ctx.superstep] = ctx.get_aggregate("reached")
                super().compute(ctx, interval, state, messages)
                if ctx.state.value_at(0) < FOREVER:
                    ctx.aggregate("reached", 1)

        # White-box observation via the `observed` closure: in-process only.
        IntervalCentricEngine(line_graph(), Agg(), executor="serial").run()
        # superstep 2 sees superstep 1's reduction: only v0 contributed
        # (and only *active* vertices contribute, so each later superstep
        # reduces exactly the frontier vertex's contribution).
        assert observed[2] == 1
        assert observed[3] == 1

    def test_unregistered_aggregator_raises_with_context(self):
        from repro.core.engine import IcmProgramError

        class Bad(Flood):
            def compute(self, ctx, interval, state, messages):
                ctx.aggregate("nope", 1)

        with pytest.raises(IcmProgramError) as err:
            IntervalCentricEngine(line_graph(), Bad()).run()
        assert isinstance(err.value.original, KeyError)
        assert err.value.phase == "compute"
        assert err.value.superstep == 1

    def test_master_halt_stops_early(self):
        class Halter(Flood):
            def master_compute(self, master):
                if master.superstep == 2:
                    master.halt()

        result = IntervalCentricEngine(line_graph(), Halter()).run()
        assert result.metrics.supersteps == 2
        assert result.value_at("v3", 5) == FOREVER  # flood cut short

    def test_master_aggregate_override(self):
        seen = {}

        class Overrider(Flood):
            def aggregators(self):
                return {"x": lambda a, b: a + b}

            def compute(self, ctx, interval, state, messages):
                if ctx.superstep == 2 and ctx.vertex_id == "v1":
                    seen["x"] = ctx.get_aggregate("x")
                super().compute(ctx, interval, state, messages)

            def master_compute(self, master):
                if master.superstep == 1:
                    master.set_aggregate("x", 42)

        IntervalCentricEngine(line_graph(), Overrider(), executor="serial").run()
        assert seen["x"] == 42


class TestDirectMessaging:
    def test_send_reaches_arbitrary_vertex(self):
        received = []

        class Pinger(IntervalProgram):
            name = "pinger"

            def init(self, ctx):
                ctx.set_state(ctx.lifespan, None)

            def compute(self, ctx, interval, state, messages):
                if ctx.superstep == 1 and ctx.vertex_id == "v0":
                    ctx.send("v3", Interval(2, 5), "hello")  # no edge v0→v3
                for m in messages:
                    received.append((ctx.vertex_id, interval, m))

        result = IntervalCentricEngine(line_graph(), Pinger(), executor="serial").run()
        assert received == [("v3", Interval(2, 5), "hello")]
        assert result.metrics.messages_sent == 1


class TestStateUpdateGuards:
    def test_compute_cannot_update_outside_active_interval(self):
        class Escaper(Flood):
            def compute(self, ctx, interval, state, messages):
                if ctx.superstep == 2:
                    ctx.set_state(ctx.lifespan, 0)  # exceeds active interval
                else:
                    super().compute(ctx, interval, state, messages)

        from repro.core.engine import IcmProgramError

        b = TemporalGraphBuilder()
        b.add_vertices(["a", "b"], 0, 10)
        b.add_edge("a", "b", 2, 5)

        class Seed(Escaper):
            def compute(self, ctx, interval, state, messages):
                if ctx.superstep == 1:
                    if ctx.vertex_id == "a":
                        ctx.set_state(interval, 0)
                    return
                ctx.set_state(ctx.lifespan, 0)

        with pytest.raises(IcmProgramError, match="sub-intervals"):
            IntervalCentricEngine(b.build(), Seed()).run()

    def test_scatter_cannot_update_state(self):
        class BadScatter(Flood):
            def scatter(self, ctx, edge, interval, state):
                ctx.set_state(interval, -1)
                return None

        with pytest.raises(RuntimeError, match="scatter must not"):
            IntervalCentricEngine(line_graph(), BadScatter()).run()


class TestSuppressionHeuristics:
    SPAN = Interval(0, 50)

    def make_engine(self, **kw):
        return IntervalCentricEngine(line_graph(), Flood(), **kw)

    def test_threshold_respected(self):
        engine = self.make_engine(warp_suppression_threshold=0.5)
        unit = [message(t, t + 1, t) for t in range(4)]
        long = [message(0, 8, 9)]
        assert engine._should_suppress_warp(unit, self.SPAN)
        assert not engine._should_suppress_warp(unit[:1] + long * 3, self.SPAN)

    def test_unbounded_messages_never_suppressed(self):
        engine = self.make_engine()
        msgs = [message(t, t + 1, t) for t in range(9)]
        msgs.append(message(3, FOREVER, 1))
        assert not engine._should_suppress_warp(msgs, Interval(0, FOREVER))

    def test_unbounded_message_clipped_by_bounded_lifespan(self):
        """A till-∞ message into a bounded-lifespan vertex expands to at
        most the lifespan, so it no longer vetoes suppression outright."""
        engine = self.make_engine()
        msgs = [message(t, t + 1, t) for t in range(9)]
        msgs.append(message(3, FOREVER, 1))
        assert engine._should_suppress_warp(msgs, Interval(0, 10))

    def test_expansion_cap(self):
        engine = self.make_engine(suppression_expansion_cap=2)
        msgs = [message(t, t + 1, t) for t in range(8)] + [message(0, 40, 1)]
        # 8 units + one 40-long: expansion 48 > 2 * 9 → refuse.
        assert not engine._should_suppress_warp(msgs, self.SPAN)

    def test_disabled(self):
        engine = self.make_engine(enable_warp_suppression=False)
        assert not engine._should_suppress_warp([message(0, 1, 1)], self.SPAN)

    def test_dead_unit_traffic_cannot_force_suppression(self):
        """Regression: unit messages entirely outside the lifespan used to
        count toward the unit fraction, flipping vertices with genuinely
        interval-shaped live traffic onto the time-point path."""
        engine = self.make_engine()
        lifespan = Interval(0, 10)
        live = [message(0, 9, 5)]  # one long, warp-worthy message
        dead = [message(20 + t, 21 + t, t) for t in range(9)]
        assert not engine._should_suppress_warp(live + dead, lifespan)

    def test_dead_long_traffic_cannot_veto_suppression(self):
        """Regression: a long message outside the lifespan used to blow the
        expansion cap for a vertex whose live traffic is all unit-length."""
        engine = self.make_engine()
        lifespan = Interval(0, 10)
        live = [message(t, t + 1, t) for t in range(6)]
        dead = [message(10, 45, 1)]
        assert engine._should_suppress_warp(live + dead, lifespan)
        # The live units alone obviously suppress; dead traffic must not
        # change the verdict.
        assert engine._should_suppress_warp(live, lifespan)

    def test_all_dead_traffic_never_suppresses(self):
        engine = self.make_engine()
        msgs = [message(30 + t, 31 + t, t) for t in range(5)]
        assert not engine._should_suppress_warp(msgs, Interval(0, 10))


class TestVertexPropertyPrepartitioning:
    """Paper footnote 2: the computing unit becomes an *interval property
    vertex* — superstep 1 invokes compute once per static-property
    sub-interval."""

    def make_graph(self):
        b = TemporalGraphBuilder()
        b.add_vertex("a", 0, 12, props={"zone": [(0, 4, "red"), (4, 12, "blue")]})
        b.add_vertex("b", 0, 12)
        b.add_edge("a", "b", 0, 12)
        return b.build()

    def test_superstep1_called_per_property_interval(self):
        calls = []

        class Probe(IntervalProgram):
            name = "probe"

            def compute(self, ctx, interval, state, messages):
                if ctx.superstep == 1:
                    calls.append((ctx.vertex_id, interval,
                                  ctx.vertex_property("zone", interval.start)))

            def scatter(self, ctx, edge, interval, state):
                return None

        IntervalCentricEngine(
            self.make_graph(), Probe(), prepartition_by_vertex_properties=True,
            executor="serial",
        ).run()
        assert (("a", Interval(0, 4), "red")) in calls
        assert (("a", Interval(4, 12), "blue")) in calls
        assert (("b", Interval(0, 12), None)) in calls

    def test_default_is_single_call_per_vertex(self):
        calls = []

        class Probe(IntervalProgram):
            name = "probe"

            def compute(self, ctx, interval, state, messages):
                calls.append((ctx.vertex_id, interval))

            def scatter(self, ctx, edge, interval, state):
                return None

        IntervalCentricEngine(self.make_graph(), Probe(), executor="serial").run()
        assert len(calls) == 2


class TestComplementHelper:
    def test_gaps(self):
        lifespan = Interval(0, 10)
        covered = [Interval(2, 4), Interval(6, 7)]
        assert _complement(lifespan, covered) == [
            Interval(0, 2), Interval(4, 6), Interval(7, 10),
        ]

    def test_full_cover(self):
        assert _complement(Interval(0, 5), [Interval(0, 5)]) == []

    def test_empty_cover(self):
        assert _complement(Interval(3, 8), []) == [Interval(3, 8)]

    def test_cover_exceeding_lifespan(self):
        assert _complement(Interval(3, 8), [Interval(0, 5)]) == [Interval(5, 8)]
