"""Tests for interval messages and message combiners."""

import pytest

from repro.core.combiner import (
    max_combiner,
    min_combiner,
    or_combiner,
    sum_combiner,
    tuple_min_combiner,
)
from repro.core.interval import Interval
from repro.core.messages import IntervalMessage, message, unit_message_fraction


class TestIntervalMessage:
    def test_construction_and_equality(self):
        a = message(3, 7, 42)
        b = IntervalMessage(Interval(3, 7), 42)
        assert a == b
        assert hash(a) == hash(b)

    def test_immutability(self):
        msg = message(0, 1, "x")
        with pytest.raises(AttributeError):
            msg.value = "y"

    def test_unhashable_payload_still_hashable_message(self):
        msg = message(0, 1, [1, 2])
        assert isinstance(hash(msg), int)

    def test_repr(self):
        assert "Msg" in repr(message(1, 2, 3))


class TestUnitFraction:
    def test_empty(self):
        assert unit_message_fraction([]) == 0.0

    def test_all_unit(self):
        msgs = [message(t, t + 1, t) for t in range(5)]
        assert unit_message_fraction(msgs) == 1.0

    def test_mixed(self):
        msgs = [message(0, 1, 0), message(0, 5, 1), message(2, 3, 2), message(4, 9, 3)]
        assert unit_message_fraction(msgs) == 0.5


class TestCombiners:
    def test_min_max_sum_or(self):
        assert min_combiner()(4, 7) == 4
        assert max_combiner()(4, 7) == 7
        assert sum_combiner()(4, 7) == 11
        assert or_combiner()(False, True) is True
        assert or_combiner()(False, False) is False

    def test_tuple_min(self):
        comb = tuple_min_combiner()
        assert comb((3, "b"), (3, "a")) == (3, "a")
        assert comb((2, "z"), (3, "a")) == (2, "z")

    def test_combine_identical_intervals(self):
        comb = min_combiner()
        msgs = [message(0, 5, 9), message(0, 5, 3), message(2, 5, 1)]
        out = comb.combine_identical_intervals(msgs)
        assert out == [message(0, 5, 3), message(2, 5, 1)]

    def test_combine_identical_intervals_noop(self):
        comb = min_combiner()
        msgs = [message(0, 5, 9), message(1, 5, 3)]
        assert comb.combine_identical_intervals(msgs) is msgs
