"""Cross-check the sweep-based warp against a naive per-time-point model.

The naive model is the *definition*: for every time-point, the active
group is the set of inner values covering it, paired with the covering
outer value.  The sweep must agree pointwise, and its triples must be the
coarsest partition of that pointwise function (maximality).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.core.warp import time_warp

TIME_LIMIT = 24
TIME = st.integers(min_value=0, max_value=TIME_LIMIT)


@st.composite
def partitioned_outer(draw):
    bounds = sorted(draw(st.sets(TIME, min_size=2, max_size=6)))
    values = [draw(st.integers(min_value=0, max_value=3)) for _ in bounds[1:]]
    return [
        (Interval(lo, hi), v)
        for (lo, hi), v in zip(zip(bounds, bounds[1:]), values)
    ]


@st.composite
def inner_items(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    items = []
    for _ in range(n):
        start = draw(TIME)
        length = draw(st.integers(min_value=1, max_value=10))
        items.append((Interval(start, start + length), draw(st.integers(min_value=0, max_value=3))))
    return items


def naive_pointwise(outer, inner):
    """time-point → (outer value, sorted inner multiset) or None."""
    table = {}
    for t in range(TIME_LIMIT + 12):
        outer_vals = [v for iv, v in outer if iv.contains_point(t)]
        if not outer_vals:
            continue
        group = sorted(v for iv, v in inner if iv.contains_point(t))
        if group:
            table[t] = (outer_vals[0], group)
    return table


@given(partitioned_outer(), inner_items())
@settings(max_examples=300, deadline=None)
def test_sweep_agrees_with_naive_pointwise(outer, inner):
    triples = time_warp(outer, inner)
    naive = naive_pointwise(outer, inner)
    from_sweep = {}
    for iv, s, group in triples:
        for t in iv.points():
            assert t not in from_sweep, "triples overlap"
            from_sweep[t] = (s, sorted(group))
    assert from_sweep == naive


@given(partitioned_outer(), inner_items())
@settings(max_examples=300, deadline=None)
def test_sweep_is_coarsest_partition(outer, inner):
    """Maximality, stated against the naive model: consecutive time-points
    with identical (value, group) must never be split across triples."""
    triples = time_warp(outer, inner)
    naive = naive_pointwise(outer, inner)
    starts = {iv.start for iv, _, _ in triples}
    for t in sorted(naive):
        if t + 1 in naive and naive[t] == naive[t + 1]:
            assert t + 1 not in starts, f"needless split at {t + 1}"
