"""Unit and property-based tests for IntervalSet algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import FOREVER, Interval
from repro.core.intervalset import IntervalSet


def s(*spans):
    return IntervalSet.of(*spans)


class TestConstruction:
    def test_normalisation(self):
        assert s((0, 3), (3, 6), (8, 9)).intervals() == [Interval(0, 6), Interval(8, 9)]

    def test_empty_and_point(self):
        assert not IntervalSet.empty()
        assert 5 in IntervalSet.point(5)
        assert 6 not in IntervalSet.point(5)

    def test_always(self):
        assert 10**15 in IntervalSet.always()


class TestAlgebraBasics:
    A = s((0, 5), (10, 15))
    B = s((3, 12))

    def test_union(self):
        assert (self.A | self.B).intervals() == [Interval(0, 15)]

    def test_intersection(self):
        assert (self.A & self.B).intervals() == [Interval(3, 5), Interval(10, 12)]

    def test_difference(self):
        assert (self.A - self.B).intervals() == [Interval(0, 3), Interval(12, 15)]

    def test_symmetric_difference(self):
        assert (self.A ^ self.B).intervals() == [
            Interval(0, 3), Interval(5, 10), Interval(12, 15)
        ]

    def test_complement_within_universe(self):
        assert self.A.complement(Interval(0, 20)).intervals() == [
            Interval(5, 10), Interval(15, 20)
        ]

    def test_complement_unbounded(self):
        comp = self.A.complement()
        assert 7 in comp and 2 not in comp
        assert comp.intervals()[-1].is_unbounded

    def test_subset(self):
        assert s((1, 3)) <= self.A
        assert not (self.B <= self.A)

    def test_clip_span_points(self):
        assert self.A.clip(Interval(4, 11)).intervals() == [
            Interval(4, 5), Interval(10, 11)
        ]
        assert self.A.span() == Interval(0, 15)
        assert self.A.total_points() == 10
        assert IntervalSet.always().total_points() == FOREVER


SPANS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.integers(min_value=1, max_value=10)),
    max_size=6,
).map(lambda pairs: IntervalSet(Interval(a, a + b) for a, b in pairs))


def points(iv_set, domain=range(45)):
    return {t for t in domain if t in iv_set}


@given(SPANS, SPANS)
@settings(max_examples=300, deadline=None)
def test_operations_match_python_sets(a, b):
    pa, pb = points(a), points(b)
    assert points(a | b) == pa | pb
    assert points(a & b) == pa & pb
    assert points(a - b) == pa - pb
    assert points(a ^ b) == pa ^ pb
    assert (a <= b) == (pa <= pb)


@given(SPANS, SPANS, SPANS)
@settings(max_examples=200, deadline=None)
def test_algebraic_laws(a, b, c):
    assert (a | b) == (b | a)
    assert (a & b) == (b & a)
    assert ((a | b) | c) == (a | (b | c))
    assert (a & (b | c)) == ((a & b) | (a & c))  # distributivity
    assert (a - b) == (a & b.complement(Interval(0, 60)).union(
        IntervalSet([Interval(60, FOREVER)])))  # De-Morgan-ish within domain


@given(SPANS)
@settings(max_examples=200, deadline=None)
def test_normal_form_is_minimal(a):
    for x, y in zip(a.intervals(), a.intervals()[1:]):
        assert x.end < y.start  # disjoint AND non-adjacent


@given(SPANS)
@settings(max_examples=200, deadline=None)
def test_complement_involution(a):
    universe = Interval(0, 50)
    clipped = a.clip(universe)
    assert clipped.complement(universe).complement(universe) == clipped
