"""Oracle-equivalence tests for the single-pass sweep kernels.

The optimised kernels (``time_warp``/``time_join`` global sweep, the
engine's ``merge_join_partitioned`` scatter pairing, ``PartitionedState``'s
bulk update path) must agree with the retained straightforward
implementations in ``tests/core/_reference_impls.py`` — exactly, not just
pointwise, wherever the output is canonical.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.core.state import PartitionedState, states_equal_pointwise
from repro.core.warp import (
    _groups_equal,
    merge_join_partitioned,
    time_join,
    time_warp,
)

from ._reference_impls import (
    _reference_groups_equal,
    reference_join_partitioned,
    reference_set_sequence,
    reference_time_join,
    reference_time_warp,
)

TIME = st.integers(min_value=0, max_value=40)


@st.composite
def partitioned_outer(draw, max_parts=8, distinct_values=4, gaps=False):
    """A sorted, non-overlapping outer set; optionally with gaps."""
    bounds = sorted(draw(st.sets(TIME, min_size=2, max_size=max_parts + 1)))
    parts = []
    for i, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        if gaps and draw(st.booleans()):
            continue
        parts.append((Interval(lo, hi), draw(st.integers(0, distinct_values - 1))))
    return parts


@st.composite
def inner_items(draw, max_items=10, distinct_values=4):
    n = draw(st.integers(min_value=0, max_value=max_items))
    items = []
    for _ in range(n):
        start = draw(TIME)
        length = draw(st.integers(min_value=1, max_value=15))
        items.append(
            (Interval(start, start + length), draw(st.integers(0, distinct_values - 1)))
        )
    return items


def canon_triples(triples):
    """Triples with group order erased (groups compared as multisets)."""
    return [(iv, s, sorted(g, key=repr)) for iv, s, g in triples]


class TestWarpOracle:
    @given(partitioned_outer(), inner_items())
    @settings(max_examples=400, deadline=None)
    def test_plain_warp_matches_reference_exactly(self, outer, inner):
        assert time_warp(outer, inner) == reference_time_warp(outer, inner)

    @given(partitioned_outer(gaps=True), inner_items())
    @settings(max_examples=300, deadline=None)
    def test_warp_with_gapped_outer_matches_reference(self, outer, inner):
        assert time_warp(outer, inner) == reference_time_warp(outer, inner)

    @given(partitioned_outer(), inner_items())
    @settings(max_examples=300, deadline=None)
    def test_combiner_warp_matches_reference_exactly(self, outer, inner):
        got = time_warp(outer, inner, combine=min)
        want = reference_time_warp(outer, inner, combine=min)
        assert got == want

    @given(partitioned_outer(), inner_items())
    @settings(max_examples=200, deadline=None)
    def test_sum_combiner_matches_reference(self, outer, inner):
        """A fold whose result depends on every operand (not just the min)
        exercises the incremental fold cache."""
        combine = lambda a, b: a + b  # noqa: E731
        got = time_warp(outer, inner, combine=combine)
        want = reference_time_warp(outer, inner, combine=combine)
        assert got == want

    @given(partitioned_outer(max_parts=5), inner_items(max_items=6))
    @settings(max_examples=200, deadline=None)
    def test_unhashable_payloads_match_reference(self, outer, inner):
        """Group merging must survive unhashable message values (lists)."""
        inner_lists = [(iv, [v]) for iv, v in inner]
        got = canon_triples(time_warp(outer, inner_lists))
        want = canon_triples(reference_time_warp(outer, inner_lists))
        assert got == want

    @given(partitioned_outer(max_parts=5), inner_items(max_items=6))
    @settings(max_examples=200, deadline=None)
    def test_unhashable_unorderable_payloads_match_reference(self, outer, inner):
        """The last-resort quadratic compare path: dict payloads are neither
        hashable nor orderable."""
        inner_dicts = [(iv, {"v": v}) for iv, v in inner]
        got = canon_triples(time_warp(outer, inner_dicts))
        want = canon_triples(reference_time_warp(outer, inner_dicts))
        assert got == want


class TestJoinOracle:
    @given(partitioned_outer(gaps=True), inner_items())
    @settings(max_examples=300, deadline=None)
    def test_time_join_matches_reference_exactly(self, outer, inner):
        assert time_join(outer, inner) == reference_time_join(outer, inner)

    @given(inner_items(max_items=8), inner_items(max_items=8))
    @settings(max_examples=300, deadline=None)
    def test_time_join_unpartitioned_outer_matches_reference(self, outer, inner):
        """time_join does not require a partitioned outer; arbitrary
        overlapping outers must agree with the reference too."""
        assert time_join(outer, inner) == reference_time_join(outer, inner)


class TestScatterPairingOracle:
    @given(partitioned_outer(gaps=True), partitioned_outer(gaps=True))
    @settings(max_examples=300, deadline=None)
    def test_merge_join_matches_nested_intersection(self, slices, pieces):
        got = set(merge_join_partitioned(slices, pieces))
        want = {
            (iv, s, p)
            for iv, s, p in reference_join_partitioned(slices, pieces)
        }
        assert got == want

    @given(partitioned_outer(gaps=True), partitioned_outer(gaps=True))
    @settings(max_examples=200, deadline=None)
    def test_merge_join_is_time_ordered(self, slices, pieces):
        out = merge_join_partitioned(slices, pieces)
        starts = [iv.start for iv, _, _ in out]
        assert starts == sorted(starts)

    @given(partitioned_outer(gaps=True), partitioned_outer(gaps=True))
    @settings(max_examples=200, deadline=None)
    def test_merge_join_agrees_with_time_join(self, slices, pieces):
        got = sorted(merge_join_partitioned(slices, pieces), key=repr)
        want = sorted(time_join(slices, pieces), key=repr)
        assert got == want


@st.composite
def update_batches(draw, span=40, max_updates=12):
    n = draw(st.integers(min_value=0, max_value=max_updates))
    updates = []
    for _ in range(n):
        start = draw(st.integers(min_value=0, max_value=span - 1))
        length = draw(st.integers(min_value=1, max_value=span - start))
        updates.append((Interval(start, start + length), draw(st.integers(0, 3))))
    return updates


class TestBulkStateOracle:
    SPAN = 40

    @given(update_batches(), update_batches(), st.booleans())
    @settings(max_examples=400, deadline=None)
    def test_set_many_matches_sequential_set(self, warmup, batch, coalesce):
        lifespan = Interval(0, self.SPAN)
        bulk = PartitionedState(lifespan, 0, coalesce=coalesce)
        seq = PartitionedState(lifespan, 0, coalesce=coalesce)
        # A warmup batch gives the states non-trivial prior partitions.
        reference_set_sequence(bulk, warmup)
        reference_set_sequence(seq, warmup)
        bulk.set_many(batch)
        reference_set_sequence(seq, batch)
        bulk.check_invariants()
        assert states_equal_pointwise(bulk, seq)
        if coalesce:
            # Coalescing keeps the partitioning canonical, so the bulk path
            # must match the sequential structure exactly, not just
            # pointwise.
            assert bulk.partitions() == seq.partitions()

    @given(update_batches(), st.integers(0, 30))
    @settings(max_examples=200, deadline=None)
    def test_update_applies_fn_to_pre_update_slices(self, warmup, start):
        """``update`` now batches its writes through set_many; ``fn`` must
        still observe the original values of every covered slice."""
        lifespan = Interval(0, self.SPAN)
        window = Interval(start, min(start + 10, self.SPAN))
        bulk = PartitionedState(lifespan, 0)
        seq = PartitionedState(lifespan, 0)
        reference_set_sequence(bulk, warmup)
        reference_set_sequence(seq, warmup)
        bulk.update(window, lambda sub, old: old + 100)
        for sub, old in seq.slices(window):
            seq.set(sub, old + 100)
        bulk.check_invariants()
        assert bulk.partitions() == seq.partitions()


class TestPresplit:
    @given(st.sets(st.integers(min_value=-5, max_value=45), max_size=12),
           update_batches())
    @settings(max_examples=300, deadline=None)
    def test_presplit_matches_repeated_split_at(self, points, warmup):
        lifespan = Interval(0, 40)
        bulk = PartitionedState(lifespan, 0, coalesce=False)
        seq = PartitionedState(lifespan, 0, coalesce=False)
        reference_set_sequence(bulk, warmup)
        reference_set_sequence(seq, warmup)
        bulk.presplit(points)
        for t in sorted(points):
            if lifespan.start < t < lifespan.end:
                seq._split_at(t)
        bulk.check_invariants()
        assert bulk.partitions() == seq.partitions()


class TestGroupsEqual:
    CASES = [
        ([1, 2, 2], [2, 1, 2], True),
        ([1, 2, 2], [2, 2, 2], False),
        ([1, 2], [1, 2, 2], False),
        ([], [], True),
        ([[1], [2]], [[2], [1]], True),          # unhashable, orderable
        ([[1], [1]], [[1], [2]], False),
        ([{"a": 1}], [{"a": 1}], True),          # unhashable, unorderable
        ([{"a": 1}, {"b": 2}], [{"b": 2}, {"a": 1}], True),
        ([{"a": 1}], [{"a": 2}], False),
        ([1, "x"], ["x", 1], True),              # mixed types, hashable
    ]

    def test_agrees_with_reference_on_cases(self):
        for a, b, expected in self.CASES:
            assert _groups_equal(a, b) is expected
            assert _reference_groups_equal(a, b) is expected

    @given(st.lists(st.integers(0, 4), max_size=8),
           st.lists(st.integers(0, 4), max_size=8))
    @settings(max_examples=300, deadline=None)
    def test_agrees_with_reference_property(self, a, b):
        assert _groups_equal(a, b) == _reference_groups_equal(a, b)
