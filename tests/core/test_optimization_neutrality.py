"""Property-based tests: every engine optimisation is semantics-neutral.

The paper's engineering optimisations (Sec. VI) must never change results
— only costs.  These tests run SSSP/EAT over randomly generated temporal
graphs with each optimisation toggled and require pointwise-identical
final states, plus direct properties of the message-set transformations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.td.eat import TemporalEAT
from repro.algorithms.td.sssp import TemporalSSSP
from repro.core.combiner import coalesce_messages, min_combiner
from repro.core.engine import IntervalCentricEngine
from repro.core.interval import FOREVER, Interval
from repro.core.messages import IntervalMessage
from repro.core.state import states_equal_pointwise
from repro.graph.builder import TemporalGraphBuilder

HORIZON = 10


@st.composite
def temporal_graph(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    b = TemporalGraphBuilder()
    for i in range(n):
        b.add_vertex(f"v{i}", 0, HORIZON)
    n_edges = draw(st.integers(min_value=1, max_value=14))
    for _ in range(n_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if dst == src:
            dst = (dst + 1) % n
        start = draw(st.integers(min_value=0, max_value=HORIZON - 1))
        end = draw(st.integers(min_value=start + 1, max_value=HORIZON))
        cost = draw(st.integers(min_value=1, max_value=4))
        b.add_edge(f"v{src}", f"v{dst}", start, end,
                   props={"travel-cost": [(start, end, cost)], "travel-time": 1})
    return b.build()


def _states(graph, program_factory, **options):
    return IntervalCentricEngine(graph, program_factory(), **options).run().states


OPTION_SETS = [
    {"enable_warp_combiner": False},
    {"enable_receiver_combiner": False},
    {"enable_dominated_elimination": False},
    {"enable_warp_suppression": False},
    {"coalesce_states": False},
    {"enable_warp_combiner": False, "enable_receiver_combiner": False,
     "enable_dominated_elimination": False, "enable_warp_suppression": False,
     "coalesce_states": False},
]


@given(temporal_graph(), st.sampled_from(range(len(OPTION_SETS))))
@settings(max_examples=120, deadline=None)
def test_sssp_invariant_under_optimisations(graph, option_idx):
    baseline = _states(graph, lambda: TemporalSSSP("v0"))
    variant = _states(graph, lambda: TemporalSSSP("v0"), **OPTION_SETS[option_idx])
    for vid in graph.vertex_ids():
        assert states_equal_pointwise(baseline[vid], variant[vid]), (
            vid, OPTION_SETS[option_idx])


@given(temporal_graph(), st.sampled_from(range(len(OPTION_SETS))))
@settings(max_examples=80, deadline=None)
def test_eat_invariant_under_optimisations(graph, option_idx):
    baseline = _states(graph, lambda: TemporalEAT("v0"))
    variant = _states(graph, lambda: TemporalEAT("v0"), **OPTION_SETS[option_idx])
    for vid in graph.vertex_ids():
        assert states_equal_pointwise(baseline[vid], variant[vid]), vid


@given(temporal_graph(), st.sampled_from(range(len(OPTION_SETS))))
@settings(max_examples=60, deadline=None)
def test_rh_invariant_under_optimisations(graph, option_idx):
    from repro.algorithms.td.reach import TemporalReachability

    baseline = _states(graph, lambda: TemporalReachability("v0"))
    variant = _states(
        graph, lambda: TemporalReachability("v0"), **OPTION_SETS[option_idx]
    )
    for vid in graph.vertex_ids():
        assert states_equal_pointwise(baseline[vid], variant[vid]), vid


@given(temporal_graph(), st.sampled_from(range(len(OPTION_SETS))))
@settings(max_examples=60, deadline=None)
def test_tmst_invariant_under_optimisations(graph, option_idx):
    from repro.algorithms.td.tmst import TemporalTMST

    baseline = _states(graph, lambda: TemporalTMST("v0"))
    variant = _states(graph, lambda: TemporalTMST("v0"), **OPTION_SETS[option_idx])
    for vid in graph.vertex_ids():
        assert states_equal_pointwise(baseline[vid], variant[vid]), vid


# -- direct properties of the message transformations --------------------------


@st.composite
def message_batch(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    msgs = []
    for _ in range(n):
        start = draw(st.integers(min_value=0, max_value=20))
        length = draw(st.one_of(st.integers(min_value=1, max_value=10), st.none()))
        end = FOREVER if length is None else start + length
        value = draw(st.integers(min_value=0, max_value=5))
        msgs.append(IntervalMessage(Interval(start, end), value))
    return msgs


def _pointwise_min(messages, t):
    covering = [m.value for m in messages if m.interval.contains_point(t)]
    return min(covering) if covering else None


@given(message_batch())
@settings(max_examples=300, deadline=None)
def test_dominated_elimination_preserves_pointwise_fold(msgs):
    pruned = min_combiner().combine_dominated(msgs)
    assert len(pruned) <= len(msgs)
    for t in range(0, 35):
        assert _pointwise_min(pruned, t) == _pointwise_min(msgs, t)
    # Unbounded tail too.
    assert _pointwise_min(pruned, 10**9) == _pointwise_min(msgs, 10**9)


@given(message_batch())
@settings(max_examples=300, deadline=None)
def test_dominated_elimination_is_idempotent(msgs):
    combiner = min_combiner()
    once = combiner.combine_dominated(msgs)
    assert combiner.combine_dominated(once) == once


@given(message_batch(), st.booleans())
@settings(max_examples=300, deadline=None)
def test_coalesce_preserves_pointwise_value_sets(msgs, allow_overlap):
    merged = coalesce_messages(msgs, allow_overlap=allow_overlap)
    assert len(merged) <= len(msgs)
    for t in list(range(0, 35)) + [10**9]:
        before = {m.value for m in msgs if m.interval.contains_point(t)}
        after = {m.value for m in merged if m.interval.contains_point(t)}
        assert before == after, t


@given(message_batch())
@settings(max_examples=300, deadline=None)
def test_coalesce_without_overlap_preserves_multiplicity(msgs):
    """Adjacent-only merging never changes per-point value multisets."""
    merged = coalesce_messages(msgs, allow_overlap=False)
    for t in list(range(0, 35)) + [10**9]:
        before = sorted(m.value for m in msgs if m.interval.contains_point(t))
        after = sorted(m.value for m in merged if m.interval.contains_point(t))
        assert before == after, t
