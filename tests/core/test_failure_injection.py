"""Failure-injection tests: misbehaving user logic must fail loudly,
with execution context, and never corrupt silently."""

import pytest

from repro.core.engine import IcmProgramError, IntervalCentricEngine
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.graph.builder import TemporalGraphBuilder


def tiny_graph():
    b = TemporalGraphBuilder()
    b.add_vertices(["a", "b"], 0, 10)
    b.add_edge("a", "b", 0, 10, eid="ab")
    return b.build()


class Base(IntervalProgram):
    name = "faulty"

    def init(self, ctx):
        ctx.set_state(ctx.lifespan, 0)

    def compute(self, ctx, interval, state, messages):
        if ctx.superstep == 1 and ctx.vertex_id == "a":
            ctx.set_state(interval, 1)

    def scatter(self, ctx, edge, interval, state):
        return [(interval, state)]


class TestComputeFailures:
    def test_exception_carries_vertex_and_superstep(self):
        class Boom(Base):
            def compute(self, ctx, interval, state, messages):
                if ctx.superstep == 2:
                    raise ZeroDivisionError("kaboom")
                super().compute(ctx, interval, state, messages)

        with pytest.raises(IcmProgramError) as err:
            IntervalCentricEngine(tiny_graph(), Boom()).run()
        assert err.value.vertex == "b"
        assert err.value.superstep == 2
        assert err.value.phase == "compute"
        assert isinstance(err.value.original, ZeroDivisionError)
        assert "kaboom" in str(err.value)

    def test_no_double_wrapping(self):
        class Boom(Base):
            def compute(self, ctx, interval, state, messages):
                raise ValueError("inner")

        with pytest.raises(IcmProgramError) as err:
            IntervalCentricEngine(tiny_graph(), Boom()).run()
        assert not isinstance(err.value.original, IcmProgramError)


class TestScatterFailures:
    def test_scatter_exception_wrapped(self):
        class Boom(Base):
            def scatter(self, ctx, edge, interval, state):
                raise RuntimeError("bad scatter")

        with pytest.raises(IcmProgramError) as err:
            IntervalCentricEngine(tiny_graph(), Boom()).run()
        assert err.value.phase == "scatter"
        assert err.value.vertex == "a"

    def test_invalid_message_interval_is_wrapped_user_error(self):
        class Boom(Base):
            def scatter(self, ctx, edge, interval, state):
                return [(Interval(5, 5), state)]  # empty interval

        with pytest.raises(IcmProgramError, match="empty interval"):
            IntervalCentricEngine(tiny_graph(), Boom()).run()

    def test_malformed_scatter_return(self):
        class Boom(Base):
            def scatter(self, ctx, edge, interval, state):
                return [42]  # neither message nor (interval, value)

        with pytest.raises(TypeError):
            IntervalCentricEngine(tiny_graph(), Boom()).run()


class TestMessagingEdgeCases:
    def test_direct_send_to_unknown_vertex_is_dropped(self):
        """Messages to ids outside the graph are silently discarded at the
        barrier (matching Giraph's resolve-to-nothing default)."""

        class Ghost(Base):
            def compute(self, ctx, interval, state, messages):
                if ctx.superstep == 1 and ctx.vertex_id == "a":
                    ctx.send("phantom", Interval(0, 5), 1)
                    ctx.set_state(interval, 1)

        result = IntervalCentricEngine(tiny_graph(), Ghost()).run()
        assert result.metrics.supersteps >= 2  # engine didn't crash

    def test_message_outside_lifespan_never_computes(self):
        """A message entirely outside the destination's lifespan activates
        the vertex but warp yields no triples — no compute, no corruption."""
        b = TemporalGraphBuilder()
        b.add_vertex("a", 0, 10)
        b.add_vertex("late", 0, 3)
        b.add_edge("a", "late", 0, 3, eid="al")
        g = b.build()

        calls = []

        class Probe(Base):
            def compute(self, ctx, interval, state, messages):
                calls.append((ctx.superstep, ctx.vertex_id, interval))
                super().compute(ctx, interval, state, messages)

            def scatter(self, ctx, edge, interval, state):
                return [(Interval(5, FOREVER), state)]  # beyond late's life

        IntervalCentricEngine(g, Probe()).run()
        assert all(not (s > 1 and v == "late") for s, v, _ in calls)
