"""Property-based tests for the four formal warp guarantees (Sec. IV-B)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.core.warp import time_join, time_warp

#: Compact time domain so overlaps are common.
TIME = st.integers(min_value=0, max_value=30)


@st.composite
def partitioned_outer(draw):
    """A temporally partitioned outer set with unique values per partition."""
    bounds = sorted(draw(st.sets(TIME, min_size=2, max_size=8)))
    return [
        (Interval(lo, hi), f"s{i}")
        for i, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
    ]


@st.composite
def inner_messages(draw):
    """Arbitrary inner interval-values with unique values per item."""
    n = draw(st.integers(min_value=1, max_value=8))
    items = []
    for i in range(n):
        start = draw(TIME)
        length = draw(st.integers(min_value=1, max_value=12))
        items.append((Interval(start, start + length), f"m{i}"))
    return items


@given(partitioned_outer(), inner_messages())
@settings(max_examples=300, deadline=None)
def test_valid_inclusion(outer, inner):
    """Every overlapping (state, message) pair appears at every shared
    time-point of some output triple."""
    out = time_warp(outer, inner)
    for s_iv, s_val in outer:
        for m_iv, m_val in inner:
            common = s_iv.intersect(m_iv)
            if common is None:
                continue
            for t in common.points():
                hits = [
                    (iv2, s2, g2)
                    for iv2, s2, g2 in out
                    if iv2.contains_point(t) and s2 == s_val and m_val in g2
                ]
                assert hits, f"({s_val},{m_val}) missing at t={t}"


@given(partitioned_outer(), inner_messages())
@settings(max_examples=300, deadline=None)
def test_no_invalid_inclusion(outer, inner):
    """Output triples only combine values that exist throughout."""
    out = time_warp(outer, inner)
    outer_by_val = {v: iv2 for iv2, v in outer}
    inner_by_val = {v: iv2 for iv2, v in inner}
    for iv2, s_val, group in out:
        assert iv2.within(outer_by_val[s_val])
        for m_val in group:
            assert iv2.within(inner_by_val[m_val])


@given(partitioned_outer(), inner_messages())
@settings(max_examples=300, deadline=None)
def test_no_duplication(outer, inner):
    """An outer value covers each time-point in at most one triple."""
    out = time_warp(outer, inner)
    for i, (iv_a, s_a, _) in enumerate(out):
        for iv_b, s_b, _ in out[i + 1:]:
            if s_a == s_b:
                assert not iv_a.overlaps(iv_b)


@given(partitioned_outer(), inner_messages())
@settings(max_examples=300, deadline=None)
def test_maximal(outer, inner):
    """No two adjacent/overlapping triples share value and message group."""
    out = time_warp(outer, inner)
    for i, (iv_a, s_a, g_a) in enumerate(out):
        for iv_b, s_b, g_b in out[i + 1:]:
            if s_a == s_b and sorted(g_a) == sorted(g_b):
                assert not iv_a.overlaps(iv_b)
                assert not (iv_a.meets(iv_b) or iv_b.meets(iv_a))


@given(partitioned_outer(), inner_messages())
@settings(max_examples=200, deadline=None)
def test_groups_never_empty(outer, inner):
    for _, _, group in time_warp(outer, inner):
        assert group


@given(partitioned_outer(), inner_messages())
@settings(max_examples=200, deadline=None)
def test_output_sorted_and_within_join(outer, inner):
    """Triples come out time-ordered and consistent with the time-join."""
    out = time_warp(outer, inner)
    starts = [iv2.start for iv2, _, _ in out]
    assert starts == sorted(starts)
    join = time_join(outer, inner)
    join_pairs = {(s, m) for _, s, m in join}
    for iv2, s_val, group in out:
        for m_val in group:
            assert (s_val, m_val) in join_pairs


@given(partitioned_outer(), inner_messages())
@settings(max_examples=200, deadline=None)
def test_combiner_path_agrees_with_plain_path(outer, inner):
    """Inline-fold triples cover the same points with the folded value."""
    plain = time_warp(outer, inner)
    folded = time_warp(outer, inner, combine=min)
    # Compare pointwise: for each time-point covered, the folded value must
    # equal the min of the plain group covering it.
    point_plain = {}
    for iv2, s_val, group in plain:
        for t in iv2.points():
            point_plain[(t, s_val)] = min(group)
    point_folded = {}
    for iv2, s_val, group in folded:
        assert len(group) == 1
        for t in iv2.points():
            point_folded[(t, s_val)] = group[0]
    assert point_plain == point_folded
