"""Reference (pre-optimisation) kernel implementations, kept as oracles.

These are the straightforward implementations the optimised kernels in
``repro.core.warp``, ``repro.core.engine`` and ``repro.core.state`` replaced:

* ``reference_time_warp`` / ``reference_time_join`` — the per-partition
  rescan versions (re-filter the active set per outer partition, rebuild
  the boundary set per partition, O(n²) multiset compare in the merge).
* ``reference_join_partitioned`` — the nested ``slices × pieces``
  intersect loop the engine's scatter phase used.
* ``reference_set_sequence`` — repeated ``PartitionedState.set`` calls,
  the semantics ``set_many`` must reproduce.

They are deliberately simple and obviously correct; Hypothesis tests in
``test_kernel_oracles.py`` assert the production kernels agree with them
pointwise, and ``benchmarks/bench_kernels.py`` times production against
them to report (and gate) the speedup.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.core.interval import Interval
from repro.core.state import PartitionedState

IntervalValue = tuple[Interval, Any]
WarpTriple = tuple[Interval, Any, list[Any]]

_SENTINEL = object()


def _start_key(item: IntervalValue) -> tuple[int, int]:
    return item[0].start, item[0].end


def reference_time_join(
    outer: Sequence[IntervalValue], inner: Sequence[IntervalValue]
) -> list[tuple[Interval, Any, Any]]:
    """Valid-time natural join, with the per-outer active-list rebuild."""
    out: list[tuple[Interval, Any, Any]] = []
    outer_sorted = sorted(outer, key=_start_key)
    inner_sorted = sorted(inner, key=_start_key)
    active: list[IntervalValue] = []
    idx = 0
    for o_iv, o_val in outer_sorted:
        while idx < len(inner_sorted) and inner_sorted[idx][0].start < o_iv.end:
            active.append(inner_sorted[idx])
            idx += 1
        if active:
            active = [item for item in active if item[0].end > o_iv.start]
        for m_iv, m_val in active:
            common = o_iv.intersect(m_iv)
            if common is not None:
                out.append((common, o_val, m_val))
    return out


def reference_time_warp(
    outer: Sequence[IntervalValue],
    inner: Sequence[IntervalValue],
    combine: Optional[Callable[[Any, Any], Any]] = None,
) -> list[WarpTriple]:
    """The per-partition rescan warp (worst-case quadratic)."""
    if not outer or not inner:
        return []
    triples: list[WarpTriple] = []
    inner_sorted = sorted(inner, key=_start_key)
    idx = 0
    active: list[IntervalValue] = []
    for o_iv, o_val in sorted(outer, key=_start_key):
        while idx < len(inner_sorted) and inner_sorted[idx][0].start < o_iv.end:
            active.append(inner_sorted[idx])
            idx += 1
        if active:
            active = [item for item in active if item[0].end > o_iv.start]
        if not active:
            continue
        _warp_one_partition(o_iv, o_val, active, combine, triples)
    return _merge_maximal(triples, combined=combine is not None)


def reference_warp_boundaries(
    partition: Interval, items: Iterable[IntervalValue]
) -> list[int]:
    bounds = {partition.start, partition.end}
    for iv, _ in items:
        if iv.overlaps(partition):
            bounds.add(max(iv.start, partition.start))
            bounds.add(min(iv.end, partition.end))
    return sorted(bounds)


def _warp_one_partition(
    o_iv: Interval,
    o_val: Any,
    candidates: list[IntervalValue],
    combine: Optional[Callable[[Any, Any], Any]],
    out: list[WarpTriple],
) -> None:
    overlapping = [item for item in candidates if item[0].overlaps(o_iv)]
    if not overlapping:
        return
    bounds = reference_warp_boundaries(o_iv, overlapping)
    for lo, hi in zip(bounds, bounds[1:]):
        if combine is None:
            group = [val for iv, val in overlapping if iv.start <= lo < iv.end]
            if group:
                out.append((Interval(lo, hi), o_val, group))
        else:
            folded: Any = _SENTINEL
            count = 0
            for iv, val in overlapping:
                if iv.start <= lo < iv.end:
                    folded = val if folded is _SENTINEL else combine(folded, val)
                    count += 1
            if count:
                out.append((Interval(lo, hi), o_val, [folded, count]))


def _merge_maximal(triples: list[WarpTriple], *, combined: bool) -> list[WarpTriple]:
    if not triples:
        return triples
    if combined:
        groups_equal = lambda a, b: (  # noqa: E731
            len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
        )
    else:
        groups_equal = _reference_groups_equal
    merged: list[WarpTriple] = [triples[0]]
    for iv, s, group in triples[1:]:
        last_iv, last_s, last_group = merged[-1]
        if (
            last_iv.end == iv.start
            and _values_equal(last_s, s)
            and groups_equal(last_group, group)
        ):
            merged[-1] = (Interval(last_iv.start, iv.end), last_s, last_group)
        else:
            merged.append((iv, s, group))
    if combined:
        merged = [(iv, s, [g[0]]) for iv, s, g in merged]
    return merged


def _values_equal(a: Any, b: Any) -> bool:
    if a is b:
        return True
    try:
        return bool(a == b)
    except Exception:
        return False


def _reference_groups_equal(a: list[Any], b: list[Any]) -> bool:
    """The quadratic multiset equality the sweep's compare replaced."""
    if len(a) != len(b):
        return False
    remaining = list(b)
    for item in a:
        for j, other in enumerate(remaining):
            if _values_equal(item, other):
                del remaining[j]
                break
        else:
            return False
    return True


def reference_join_partitioned(
    slices: Sequence[IntervalValue], pieces: Sequence[IntervalValue]
) -> list[tuple[Interval, Any, Any]]:
    """The engine's old scatter pairing: intersect every slice against
    every piece (both inputs are partitioned covers)."""
    out: list[tuple[Interval, Any, Any]] = []
    for p_iv, p_val in pieces:
        for s_iv, s_val in slices:
            common = s_iv.intersect(p_iv)
            if common is not None:
                out.append((common, s_val, p_val))
    return out


def reference_set_sequence(
    state: PartitionedState, items: Iterable[tuple[Interval, Any]]
) -> None:
    """Apply updates one `.set()` at a time — the semantics of `set_many`."""
    for iv, value in items:
        state.set(iv, value)
