"""Property-based tests: PartitionedState invariants under random updates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.core.state import PartitionedState

LIFESPAN = Interval(0, 40)


@st.composite
def updates(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    out = []
    for _ in range(n):
        start = draw(st.integers(min_value=0, max_value=39))
        end = draw(st.integers(min_value=start + 1, max_value=40))
        value = draw(st.integers(min_value=0, max_value=5))
        out.append((Interval(start, end), value))
    return out


@given(updates())
@settings(max_examples=300, deadline=None)
def test_invariants_hold_after_any_update_sequence(seq):
    state = PartitionedState(LIFESPAN, -1)
    for interval, value in seq:
        state.set(interval, value)
        state.check_invariants()


@given(updates())
@settings(max_examples=300, deadline=None)
def test_pointwise_semantics_match_naive_array(seq):
    """The partitioned store behaves exactly like a dense value array."""
    state = PartitionedState(LIFESPAN, -1)
    dense = [-1] * 40
    for interval, value in seq:
        state.set(interval, value)
        for t in interval.points():
            dense[t] = value
    for t in range(40):
        assert state.value_at(t) == dense[t]


@given(updates())
@settings(max_examples=200, deadline=None)
def test_coalescing_produces_minimal_partition_count(seq):
    """With coalescing, no two adjacent partitions hold equal values."""
    state = PartitionedState(LIFESPAN, -1)
    for interval, value in seq:
        state.set(interval, value)
    parts = state.partitions()
    for (_, v1), (_, v2) in zip(parts, parts[1:]):
        assert v1 != v2


@given(updates())
@settings(max_examples=200, deadline=None)
def test_coalesced_and_uncoalesced_agree_pointwise(seq):
    a = PartitionedState(LIFESPAN, -1, coalesce=True)
    b = PartitionedState(LIFESPAN, -1, coalesce=False)
    for interval, value in seq:
        a.set(interval, value)
        b.set(interval, value)
    for t in range(40):
        assert a.value_at(t) == b.value_at(t)
    assert len(a) <= len(b)


@given(updates(), st.integers(min_value=0, max_value=39), st.integers(min_value=1, max_value=40))
@settings(max_examples=200, deadline=None)
def test_slices_cover_window_exactly(seq, start, length):
    end = min(40, start + length)
    if start >= end:
        return
    state = PartitionedState(LIFESPAN, -1)
    for interval, value in seq:
        state.set(interval, value)
    window = Interval(start, end)
    slices = state.slices(window)
    # Contiguous cover of the window.
    assert slices[0][0].start == start
    assert slices[-1][0].end == end
    for (iv1, _), (iv2, _) in zip(slices, slices[1:]):
        assert iv1.end == iv2.start
    for iv, value in slices:
        for t in iv.points():
            assert state.value_at(t) == value
