"""Tests for the execution tracer."""

from repro.algorithms.td.sssp import TemporalSSSP
from repro.core.engine import IntervalCentricEngine
from repro.core.interval import FOREVER, Interval
from repro.core.tracing import ExecutionTracer
from repro.datasets import transit_graph


def traced_run(**options):
    tracer = ExecutionTracer()
    engine = IntervalCentricEngine(
        transit_graph(), TemporalSSSP("A"), tracer=tracer, **options
    )
    result = engine.run()
    return tracer, result


class TestEventCapture:
    def test_counts_match_metrics(self):
        tracer, result = traced_run()
        assert len(tracer.computes) == result.metrics.compute_calls
        assert len(tracer.scatters) == result.metrics.scatter_calls
        assert len(tracer.sends) == result.metrics.messages_sent

    def test_supersteps(self):
        tracer, result = traced_run()
        assert tracer.supersteps() == [1, 2, 3]

    def test_paper_warp_groups_at_B(self):
        tracer, _ = traced_run(enable_warp_combiner=False)
        b_calls = tracer.computes_of("B", superstep=2)
        assert [(e.interval, sorted(e.messages)) for e in b_calls] == [
            (Interval(4, 6), [4]),
            (Interval(6, FOREVER), [3, 4]),
        ]

    def test_messages_between(self):
        tracer, _ = traced_run()
        to_b = tracer.messages_between("A", "B")
        assert [(e.interval, e.value) for e in to_b] == [
            (Interval(4, FOREVER), 4),
            (Interval(6, FOREVER), 3),
        ]

    def test_scatter_events_record_edges(self):
        tracer, _ = traced_run()
        ab = [e for e in tracer.scatters if e.edge == "AB"]
        assert [(e.interval, e.state) for e in ab] == [
            (Interval(3, 5), 0),
            (Interval(5, 6), 0),
        ]


class TestRendering:
    def test_render_full(self):
        tracer, _ = traced_run()
        text = tracer.render()
        assert "=== superstep 1 ===" in text
        assert "=== superstep 3 ===" in text
        assert "send 'A' -> 'B'" in text

    def test_render_restricted(self):
        tracer, _ = traced_run()
        text = tracer.render(vertices={"E"})
        assert "compute 'E'" in text
        assert "compute 'B'" not in text
        # Messages addressed *to* E still show.
        assert "-> 'E'" in text

    def test_no_tracer_is_default(self):
        engine = IntervalCentricEngine(transit_graph(), TemporalSSSP("A"))
        assert engine.tracer is None
        engine.run()  # runs fine without hooks
