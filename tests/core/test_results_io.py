"""Tests for result export (CSV / JSON)."""

import csv
import io
import json

from repro.algorithms.td.sssp import TemporalSSSP
from repro.core.engine import IntervalCentricEngine
from repro.core.results_io import (
    export_states_csv,
    export_states_dense_csv,
    export_states_json,
)
from repro.datasets import transit_graph


def sssp_result():
    return IntervalCentricEngine(transit_graph(), TemporalSSSP("A")).run()


class TestIntervalCsv:
    def test_rows_and_sentinels(self):
        buf = io.StringIO()
        rows = export_states_csv(sssp_result(), buf)
        buf.seek(0)
        table = list(csv.reader(buf))
        assert table[0] == ["vertex", "start", "end", "value"]
        assert len(table) == rows + 1
        b_rows = [r for r in table if r[0] == "B"]
        assert b_rows == [
            ["B", "0", "4", "inf"],
            ["B", "4", "6", "4"],
            ["B", "6", "inf", "3"],
        ]

    def test_value_fn(self):
        buf = io.StringIO()
        export_states_csv(sssp_result(), buf, value_fn=lambda v: f"<{v}>")
        assert "<4>" in buf.getvalue()

    def test_file_target(self, tmp_path):
        path = tmp_path / "out.csv"
        export_states_csv(sssp_result(), path)
        assert path.read_text().startswith("vertex,start,end,value")


class TestDenseCsv:
    def test_one_row_per_point(self):
        buf = io.StringIO()
        rows = export_states_dense_csv(sssp_result(), buf, horizon=10)
        assert rows == 6 * 10  # six perpetual vertices, horizon 10
        buf.seek(0)
        table = list(csv.reader(buf))
        e_at_9 = [r for r in table if r[0] == "E" and r[1] == "9"]
        assert e_at_9 == [["E", "9", "5"]]


class TestJson:
    def test_document_shape(self):
        buf = io.StringIO()
        doc = export_states_json(sssp_result(), buf)
        parsed = json.loads(buf.getvalue())
        assert parsed == json.loads(json.dumps(doc, default=str))
        assert parsed["algorithm"] == "SSSP"
        e = parsed["vertices"]["E"]
        assert e[-1] == {"start": 9, "end": None, "value": 5}
