"""Unit tests for the Interval type and Allen's relations."""

import pytest

from repro.core.interval import FOREVER, Interval, coalesce, format_time, total_span


class TestConstruction:
    def test_basic(self):
        iv = Interval(2, 5)
        assert iv.start == 2 and iv.end == 5

    def test_default_end_is_forever(self):
        assert Interval(3).end == FOREVER

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 5)
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Interval(-1, 4)

    def test_point_constructor(self):
        p = Interval.point(7)
        assert p == Interval(7, 8)
        assert p.is_unit

    def test_always(self):
        assert Interval.always() == Interval(0, FOREVER)

    def test_immutable(self):
        iv = Interval(1, 2)
        with pytest.raises(AttributeError):
            iv.start = 5


class TestQueries:
    def test_length(self):
        assert Interval(2, 7).length == 5
        assert Interval(2).length == FOREVER

    def test_is_unit(self):
        assert Interval(4, 5).is_unit
        assert not Interval(4, 6).is_unit

    def test_is_unbounded(self):
        assert Interval(4).is_unbounded
        assert not Interval(4, 10).is_unbounded

    def test_contains_point_half_open(self):
        iv = Interval(3, 6)
        assert not iv.contains_point(2)
        assert iv.contains_point(3)
        assert iv.contains_point(5)
        assert not iv.contains_point(6)

    def test_in_operator(self):
        assert 4 in Interval(3, 6)
        assert 6 not in Interval(3, 6)

    def test_points(self):
        assert list(Interval(3, 6).points()) == [3, 4, 5]

    def test_points_unbounded_raises(self):
        with pytest.raises(ValueError):
            list(Interval(3).points())


class TestAllenRelations:
    def test_overlaps(self):
        assert Interval(1, 5).overlaps(Interval(4, 8))
        assert Interval(4, 8).overlaps(Interval(1, 5))
        assert not Interval(1, 4).overlaps(Interval(4, 8))  # meets, no overlap
        assert Interval(0, 10).overlaps(Interval(3, 4))

    def test_within_and_during(self):
        inner = Interval(3, 5)
        outer = Interval(2, 6)
        assert inner.within(outer)
        assert inner.during(outer)
        assert outer.within(outer)
        assert not outer.during(outer)  # during is strict
        assert not outer.within(inner)

    def test_contains(self):
        assert Interval(2, 6).contains(Interval(3, 5))
        assert Interval(2, 6).contains(Interval(2, 6))
        assert not Interval(3, 5).contains(Interval(2, 6))

    def test_meets(self):
        assert Interval(1, 4).meets(Interval(4, 9))
        assert not Interval(1, 4).meets(Interval(5, 9))
        assert not Interval(4, 9).meets(Interval(1, 4))

    def test_precedes(self):
        assert Interval(1, 4).precedes(Interval(4, 9))
        assert Interval(1, 4).precedes(Interval(6, 9))
        assert not Interval(1, 5).precedes(Interval(4, 9))


class TestConstructiveOps:
    def test_intersect(self):
        assert Interval(1, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(1, 5).intersect(Interval(5, 9)) is None
        assert Interval(0, 10).intersect(Interval(3, 4)) == Interval(3, 4)

    def test_intersect_commutes(self):
        a, b = Interval(1, 7), Interval(4, 12)
        assert a.intersect(b) == b.intersect(a)

    def test_hull(self):
        assert Interval(1, 3).hull(Interval(7, 9)) == Interval(1, 9)

    def test_shift(self):
        assert Interval(2, 5).shift(3) == Interval(5, 8)
        assert Interval(2, 5).shift(-2) == Interval(0, 3)
        assert Interval(2).shift(4) == Interval(6, FOREVER)

    def test_split_at(self):
        left, right = Interval(2, 8).split_at(5)
        assert left == Interval(2, 5)
        assert right == Interval(5, 8)

    def test_split_at_boundary_rejected(self):
        with pytest.raises(ValueError):
            Interval(2, 8).split_at(2)
        with pytest.raises(ValueError):
            Interval(2, 8).split_at(8)


class TestOrderingAndHashing:
    def test_sort_order(self):
        ivs = [Interval(5, 9), Interval(1, 3), Interval(1, 2)]
        assert sorted(ivs) == [Interval(1, 2), Interval(1, 3), Interval(5, 9)]

    def test_hashable(self):
        assert len({Interval(1, 2), Interval(1, 2), Interval(1, 3)}) == 2

    def test_repr_uses_inf(self):
        assert repr(Interval(3)) == "[3, inf)"
        assert repr(Interval(3, 7)) == "[3, 7)"
        assert format_time(FOREVER) == "inf"


class TestCoalesce:
    def test_merges_adjacent_and_overlapping(self):
        merged = coalesce([Interval(4, 6), Interval(0, 2), Interval(2, 4), Interval(9, 11)])
        assert merged == [Interval(0, 6), Interval(9, 11)]

    def test_empty(self):
        assert coalesce([]) == []

    def test_contained(self):
        assert coalesce([Interval(0, 10), Interval(2, 4)]) == [Interval(0, 10)]

    def test_total_span(self):
        assert total_span([Interval(0, 3), Interval(2, 5), Interval(7, 8)]) == 6
