"""End-to-end engine tests against the paper's traced SSSP run (Fig. 2).

The transit graph (``repro.datasets.transit``) reconstructs Fig. 1(a); the
paper's walk-through of superstep-by-superstep behaviour pins down the
engine's warp wiring, scatter invocation rules and final states.
"""

import pytest

from repro.algorithms.td.sssp import INFINITY, TemporalSSSP
from repro.core.engine import IntervalCentricEngine
from repro.core.interval import FOREVER, Interval
from repro.datasets.transit import EXPECTED_SSSP_FROM_A, transit_graph


class RecordingSSSP(TemporalSSSP):
    """SSSP that logs every compute and scatter invocation."""

    def __init__(self, source):
        super().__init__(source)
        self.compute_log = []
        self.scatter_log = []

    def compute(self, ctx, interval, state, messages):
        self.compute_log.append(
            (ctx.superstep, ctx.vertex_id, interval, sorted(messages))
        )
        super().compute(ctx, interval, state, messages)

    def scatter(self, ctx, edge, interval, state):
        self.scatter_log.append((ctx.superstep, ctx.vertex_id, edge.eid, interval, state))
        return super().scatter(ctx, edge, interval, state)


@pytest.fixture(scope="module")
def trace():
    graph = transit_graph()
    program = RecordingSSSP("A")
    engine = IntervalCentricEngine(
        graph, program, graph_name="transit",
        enable_warp_combiner=False,  # keep full message groups observable
        executor="serial",  # the program logs calls in-process
    )
    result = engine.run()
    return program, result


def expected_state(vid):
    out = []
    for start, end, cost in EXPECTED_SSSP_FROM_A[vid]:
        iv = Interval(start, FOREVER if end is None else end)
        out.append((iv, INFINITY if cost is None else cost))
    return out


class TestFinalStates:
    @pytest.mark.parametrize("vid", list("ABCDEF"))
    def test_final_state_matches_paper(self, trace, vid):
        _, result = trace
        assert result.states[vid].partitions() == expected_state(vid)

    def test_F_unreachable_for_temporal_reasons(self, trace):
        """F is topologically connected (E→F) but the edge expires before
        E is ever reachable — a time-respecting constraint."""
        _, result = trace
        assert result.value_at("F", 5) == INFINITY

    def test_terminates_in_three_supersteps(self, trace):
        _, result = trace
        assert result.metrics.supersteps == 3


class TestPaperTrace:
    def test_superstep1_computes_every_vertex_once(self, trace):
        program, _ = trace
        ss1 = [entry for entry in program.compute_log if entry[0] == 1]
        assert sorted(v for _, v, _, _ in ss1) == list("ABCDEF")
        for _, _, interval, messages in ss1:
            assert interval == Interval(0, FOREVER)
            assert messages == []

    def test_A_scatter_called_twice_for_edge_AB(self, trace):
        """Two interval properties ⟨[3,5),4⟩ and ⟨[5,6),3⟩ → two calls."""
        program, _ = trace
        ab = [e for e in program.scatter_log if e[1] == "A" and e[2] == "AB"]
        assert [(e[3], e[4]) for e in ab] == [
            (Interval(3, 5), 0),
            (Interval(5, 6), 0),
        ]

    def test_warp_at_B_superstep2(self, trace):
        """Compute at B: [4,6) with {4} and [6,∞) with {3,4}."""
        program, _ = trace
        b_calls = [e for e in program.compute_log if e[0] == 2 and e[1] == "B"]
        assert [(e[2], e[3]) for e in b_calls] == [
            (Interval(4, 6), [4]),
            (Interval(6, FOREVER), [3, 4]),
        ]

    def test_scatter_B_to_C_superstep2(self, trace):
        """Scatter on B→C for property ⟨[8,9),2⟩ overlapping ⟨[6,∞),3⟩."""
        program, _ = trace
        bc = [e for e in program.scatter_log if e[1] == "B" and e[2] == "BC"]
        assert bc == [(2, "B", "BC", Interval(8, 9), 3)]

    def test_warp_at_E_superstep3(self, trace):
        """Warp yields ⟨[6,9),∞,{7}⟩ and ⟨[9,∞),∞,{5,7}⟩."""
        program, _ = trace
        e_calls = [e for e in program.compute_log if e[0] == 3 and e[1] == "E"]
        assert [(e[2], e[3]) for e in e_calls] == [
            (Interval(6, 9), [7]),
            (Interval(9, FOREVER), [5, 7]),
        ]

    def test_C_receives_non_improving_message_superstep3(self, trace):
        """⟨[9,∞),5⟩ arrives at C whose state is already 3 → no update."""
        program, result = trace
        c_calls = [e for e in program.compute_log if e[0] == 3 and e[1] == "C"]
        assert c_calls == [(3, "C", Interval(9, FOREVER), [5])]
        assert result.value_at("C", 9) == 3


class TestEngineVsTransformedCounts:
    def test_icm_needs_far_fewer_calls_than_transformed(self):
        """The intro's headline: the interval-centric run touches far fewer
        (vertex, interval) units than VCM on the transformed graph."""
        from repro.algorithms.td.sssp import TgbSSSP
        from repro.baselines.tgb import run_tgb

        graph = transit_graph()
        icm = IntervalCentricEngine(graph, TemporalSSSP("A"), graph_name="transit").run()
        tgb = run_tgb(graph, TgbSSSP("A"), graph_name="transit")
        assert icm.metrics.compute_calls < tgb.metrics.compute_calls
        assert icm.metrics.messages_sent < tgb.metrics.total_messages


class TestCombinerEquivalence:
    def test_warp_combiner_does_not_change_results(self):
        graph = transit_graph()
        with_comb = IntervalCentricEngine(graph, TemporalSSSP("A")).run()
        without = IntervalCentricEngine(
            graph, TemporalSSSP("A"), enable_warp_combiner=False,
            enable_receiver_combiner=False,
        ).run()
        for vid in "ABCDEF":
            assert with_comb.states[vid].partitions() == without.states[vid].partitions()

    def test_suppression_does_not_change_results(self):
        graph = transit_graph()
        on = IntervalCentricEngine(graph, TemporalSSSP("A")).run()
        off = IntervalCentricEngine(
            graph, TemporalSSSP("A"), enable_warp_suppression=False
        ).run()
        for vid in "ABCDEF":
            assert on.states[vid].partitions() == off.states[vid].partitions()
