"""Every ``repro.*`` dotted symbol mentioned in DESIGN.md / README.md must resolve.

DESIGN.md is the paper→code map and README.md the front-door tour; a
typo'd class or a module renamed without updating the docs silently
strands readers.  This test extracts every dotted ``repro...`` reference
and checks it imports as a module or resolves as an attribute of one.
"""

import importlib
import re
from pathlib import Path

import pytest

DESIGN = Path(__file__).resolve().parent.parent / "DESIGN.md"
README = Path(__file__).resolve().parent.parent / "README.md"
PAPER = Path(__file__).resolve().parent.parent / "PAPER.md"
SYMBOL = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def design_symbols():
    return sorted(set(SYMBOL.findall(DESIGN.read_text(encoding="utf-8"))))


def readme_symbols():
    return sorted(set(SYMBOL.findall(README.read_text(encoding="utf-8"))))


def resolve(dotted: str):
    """Import the longest module prefix, then getattr the rest."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        for attr in parts[cut:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(f"no importable prefix of {dotted!r}")


def test_design_md_mentions_symbols():
    symbols = design_symbols()
    assert symbols, "DESIGN.md should reference repro.* symbols"
    assert "repro.core.engine.IntervalCentricEngine" in symbols


@pytest.mark.parametrize("dotted", design_symbols())
def test_design_md_symbol_resolves(dotted):
    try:
        resolve(dotted)
    except (ImportError, AttributeError) as exc:
        pytest.fail(f"DESIGN.md references {dotted!r} which does not resolve: {exc}")


def test_readme_mentions_api_and_obs():
    symbols = readme_symbols()
    assert "repro.api" in symbols, "README should tour the repro.api front door"
    assert "repro.obs" in symbols, "README should tour the observability layer"


@pytest.mark.parametrize("dotted", readme_symbols())
def test_readme_symbol_resolves(dotted):
    try:
        resolve(dotted)
    except (ImportError, AttributeError) as exc:
        pytest.fail(f"README.md references {dotted!r} which does not resolve: {exc}")


@pytest.mark.parametrize("doc", [DESIGN, README, PAPER], ids=lambda p: p.name)
def test_engine_class_name_never_misspelled(doc):
    """Every ``*CentricEngine`` mention is the real class name.

    The SYMBOL regex only audits dotted ``repro.*`` paths, so a bare
    backticked ``IneravalCentricEngine`` (the typo PAPER.md shipped with)
    sailed past it.  Flag any variant spelling of the engine class.
    """
    for match in re.finditer(r"\b\w*CentricEngine\b", doc.read_text(encoding="utf-8")):
        assert match.group() == "IntervalCentricEngine", (
            f"{doc.name} misspells the engine class as {match.group()!r}"
        )
