"""Unit tests for baseline internals: Chlonos replica plumbing, TGB chain
forwarding, and the GoFFish engine's bookkeeping."""

import pytest

from repro.baselines.chlonos import _build_batch_graph, run_chlonos
from repro.baselines.goffish import GoffishEngine, GoffishProgram
from repro.baselines.tgb import ChainForwardingProgram, run_tgb
from repro.baselines.vcm import VertexProgram
from repro.core.interval import Interval
from repro.graph.builder import TemporalGraphBuilder
from repro.graph.transform import CHAIN


def evolving():
    b = TemporalGraphBuilder()
    b.add_vertex("a", 0, 6)
    b.add_vertex("b", 0, 6)
    b.add_vertex("late", 3, 6)
    b.add_edge("a", "b", 0, 6, eid="ab", props={"travel-cost": 1, "travel-time": 1})
    b.add_edge("b", "late", 3, 6, eid="bl", props={"travel-cost": 2, "travel-time": 1})
    return b.build()


class TestChlonosBatchGraph:
    def test_replica_structure(self):
        batched, sizes = _build_batch_graph(evolving(), [0, 3])
        assert sizes == {0: 2, 3: 3}
        assert batched.has_vertex(("a", 0))
        assert batched.has_vertex(("late", 3))
        assert not batched.has_vertex(("late", 0))
        # Edges stay within their snapshot.
        dsts = {(e.src, e.dst) for e in batched.edges()}
        assert (("a", 0), ("b", 0)) in dsts
        assert (("b", 3), ("late", 3)) in dsts
        assert (("a", 0), ("b", 3)) not in dsts

    def test_replica_context_exposes_snapshot_view(self):
        observed = {}

        class Probe(VertexProgram):
            name = "probe"

            def init(self, ctx):
                ctx.value = 0

            def compute(self, ctx, messages):
                if ctx.superstep == 1:
                    observed[(ctx.vertex_id, ctx.time)] = (
                        ctx.num_vertices, ctx.out_degree()
                    )

        run_chlonos(evolving(), lambda t: Probe(), horizon=6)
        assert observed[("a", 0)] == (2, 1)
        assert observed[("a", 4)] == (3, 1)
        assert observed[("late", 4)] == (3, 0)


class TestChainForwarding:
    class Flag(ChainForwardingProgram):
        name = "flag"

        def init(self, ctx):
            ctx.value = False

        def absorb(self, ctx, messages):
            if ctx.superstep == 1:
                if ctx.vertex_id == ("a", 0):
                    ctx.value = True
                    return True
                return False
            if not ctx.value and any(messages):
                ctx.value = True
                return True
            return False

        def emit(self, ctx, edge):
            return True

    def test_chain_edges_carry_state_as_system_messages(self):
        res = run_tgb(evolving(), self.Flag(), horizon=6)
        assert res.metrics.system_messages > 0
        # Later replicas of 'a' inherit the flag via chains.
        assert all(flag for t, flag in res.replicas_of("a"))

    def test_pointwise_forward_fill(self):
        res = run_tgb(evolving(), self.Flag(), horizon=6)
        times = [t for t, flag in res.replicas_of("b") if flag]
        first = min(times)
        assert res.pointwise("b", first) is True
        assert res.pointwise("b", 5) is True
        assert res.pointwise("b", 0, default="none") in (True, "none", False)


class TestGoffishEngine:
    class Echo(GoffishProgram):
        name = "echo"
        log = []

        def init(self, ctx):
            ctx.value = 0

        def compute(self, ctx, messages):
            TestGoffishEngine.Echo.log.append((ctx.time, ctx.vertex_id, list(messages)))
            if ctx.vertex_id == "a" and ctx.time == 0:
                ctx.send_temporal("b", 2, "hi")

    def test_temporal_delivery_and_born_activation(self):
        self.Echo.log = []
        GoffishEngine(evolving(), self.Echo(), horizon=6).run()
        log = self.Echo.log
        assert (2, "b", ["hi"]) in log
        # 'late' is born at t=3 and runs its first compute there.
        assert any(t == 3 and vid == "late" for t, vid, _ in log)
        # Nothing else re-activates without messages or keep_alive.
        assert not any(t > 0 and vid == "a" for t, vid, _ in log)

    def test_temporal_message_direction_enforced(self):
        class Bad(GoffishProgram):
            name = "bad"

            def compute(self, ctx, messages):
                ctx.send_temporal("b", ctx.time, "now")  # same snapshot

        with pytest.raises(ValueError, match="iteration order"):
            GoffishEngine(evolving(), Bad(), horizon=6).run()

    def test_keep_alive_reactivates_without_messages(self):
        seen = []

        class Stayer(GoffishProgram):
            name = "stayer"

            def compute(self, ctx, messages):
                seen.append((ctx.time, ctx.vertex_id))
                if ctx.vertex_id == "a":
                    ctx.keep_alive()

        GoffishEngine(evolving(), Stayer(), horizon=4).run()
        assert [(t, v) for t, v in seen if v == "a"] == [(0, "a"), (1, "a"), (2, "a"), (3, "a")]

    def test_messages_beyond_horizon_dropped(self):
        class Over(GoffishProgram):
            name = "over"

            def compute(self, ctx, messages):
                if ctx.time == 0 and ctx.vertex_id == "a":
                    ctx.send_temporal("b", 99, "lost")

        res = GoffishEngine(evolving(), Over(), horizon=6).run()
        assert res.metrics.supersteps >= 1  # no crash, message discarded
