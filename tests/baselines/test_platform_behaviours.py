"""Behavioural tests for the four baseline platforms themselves —
the properties the paper attributes to each (Sec. VII-A3, VII-B)."""

import pytest

from repro.algorithms.td.sssp import GoffishSSSP, TemporalSSSP, TgbSSSP
from repro.algorithms.ti.bfs import SnapshotBFS, TemporalBFS
from repro.baselines.chlonos import run_chlonos
from repro.baselines.goffish import GoffishEngine
from repro.baselines.msb import run_msb
from repro.baselines.tgb import run_tgb
from repro.core.engine import IntervalCentricEngine
from repro.datasets import gplus, twitter
from repro.datasets.transit import transit_graph


class TestChlonosMessageSharing:
    def test_shares_messages_on_long_lifespan_graphs(self):
        """Chronos's benefit: duplicate messages to adjacent time-points of
        a sink collapse into one interval message within a batch."""
        g = twitter(scale=0.15)
        msb = run_msb(g, lambda t: SnapshotBFS("v0"))
        chl = run_chlonos(g, lambda t: SnapshotBFS("v0"))
        assert chl.metrics.shared_messages > 0
        assert chl.metrics.messages_sent < msb.metrics.messages_sent
        # ... but compute is NOT shared: same calls as MSB.
        assert chl.metrics.compute_calls == msb.metrics.compute_calls

    def test_batching_reduces_sharing(self):
        """Smaller batches → fewer adjacent snapshots to share across
        (the paper's Twitter runs share less with 5 batches)."""
        g = twitter(scale=0.15)
        full = run_chlonos(g, lambda t: SnapshotBFS("v0"))
        tiny = run_chlonos(g, lambda t: SnapshotBFS("v0"), batch_size=2)
        assert tiny.metrics.messages_sent >= full.metrics.messages_sent
        assert tiny.num_batches > full.num_batches

    def test_no_sharing_possible_on_unit_lifespans(self):
        """GPlus-style graphs: nothing spans adjacent snapshots."""
        g = gplus(scale=0.2)
        msb = run_msb(g, lambda t: SnapshotBFS("v0"))
        chl = run_chlonos(g, lambda t: SnapshotBFS("v0"))
        assert chl.metrics.messages_sent == msb.metrics.messages_sent
        assert chl.metrics.compute_calls == msb.metrics.compute_calls


class TestTgbBookkeeping:
    def test_chain_traffic_counted_as_system_messages(self):
        g = transit_graph()
        res = run_tgb(g, TgbSSSP("A"))
        assert res.metrics.system_messages > 0

    def test_transformed_result_projects_pointwise(self):
        g = transit_graph()
        res = run_tgb(g, TgbSSSP("A"))
        # Fig. 1(b) walk-through: B costs 4 once reached at 4, 3 from 6.
        assert res.pointwise("B", 4) == 4
        assert res.pointwise("B", 7) == 3
        assert res.pointwise("E", 9) == 5


class TestGoffishBehaviour:
    def test_no_sharing_across_snapshots(self):
        """GoFFish re-activates vertices every snapshot (explicit state
        passing), so compute calls exceed GRAPHITE's."""
        g = twitter(scale=0.15)
        icm = IntervalCentricEngine(g, TemporalSSSP("v0")).run()
        gof = GoffishEngine(g, GoffishSSSP("v0")).run()
        assert gof.metrics.compute_calls > icm.metrics.compute_calls
        assert gof.metrics.messages_sent > icm.metrics.messages_sent

    def test_temporal_message_beyond_horizon_dropped(self):
        g = transit_graph()
        engine = GoffishEngine(g, GoffishSSSP("A"), horizon=5)
        res = engine.run()  # arrivals at t>=5 silently dropped
        assert res.metrics.supersteps > 0

    def test_backward_direction_validation(self):
        g = transit_graph()
        with pytest.raises(ValueError):
            GoffishEngine(g, GoffishSSSP("A"), direction=0)


class TestMsbAccounting:
    def test_snapshot_load_time_accumulates(self):
        g = gplus(scale=0.2)
        res = run_msb(g, lambda t: SnapshotBFS("v0"))
        assert res.metrics.load_time > 0
        assert res.metrics.platform == "MSB"
        assert set(res.values) == set(range(g.time_horizon()))

    def test_supersteps_accumulate_across_snapshots(self):
        g = gplus(scale=0.2)
        res = run_msb(g, lambda t: SnapshotBFS("v0"))
        assert res.metrics.supersteps >= g.time_horizon()


class TestIcmVsBaselinesOnTransit:
    def test_sssp_pointwise_equivalence_all_platforms(self):
        """Sec. VII-B1: all platforms produce conceptually equal outcomes."""
        from repro.algorithms.reference import temporal_sssp_grid

        g = transit_graph()
        horizon = g.time_horizon()
        grid = temporal_sssp_grid(g, "A", horizon=horizon)
        icm = IntervalCentricEngine(g, TemporalSSSP("A")).run()
        tgb = run_tgb(g, TgbSSSP("A"), horizon=horizon)
        gof = GoffishEngine(g, GoffishSSSP("A"), horizon=horizon).run()
        from repro.algorithms.td.sssp import INFINITY

        for vid in "ABCDEF":
            for t in range(horizon):
                expected = grid[vid][t]
                assert icm.value_at(vid, t) == expected
                assert tgb.pointwise(vid, t, default=INFINITY) == expected
                assert gof.value_at(vid, t, default=INFINITY) == expected
