"""Tests for the Pregel-style VCM engine the baselines share."""

import pytest

from repro.baselines.vcm import VertexCentricEngine, VertexProgram
from repro.core.combiner import min_combiner, sum_combiner
from repro.graph.snapshots import StaticGraph


def chain_graph(n=5):
    g = StaticGraph()
    for i in range(n):
        g.add_vertex(f"v{i}")
    for i in range(n - 1):
        g.add_edge(f"v{i}", f"v{i + 1}")
    return g


class Propagate(VertexProgram):
    """Min-distance flood used to exercise the BSP loop."""

    name = "prop"

    def __init__(self, source):
        self.source = source
        self.combiner = min_combiner()

    def init(self, ctx):
        ctx.value = 10**9

    def compute(self, ctx, messages):
        if ctx.superstep == 1:
            if ctx.vertex_id == self.source:
                ctx.value = 0
                ctx.send_to_neighbors(1)
            return
        best = min(messages)
        if best < ctx.value:
            ctx.value = best
            ctx.send_to_neighbors(best + 1)


class TestBspLoop:
    def test_flood_converges(self):
        g = chain_graph()
        res = VertexCentricEngine(g, Propagate("v0")).run()
        assert [res.values[f"v{i}"] for i in range(5)] == [0, 1, 2, 3, 4]
        assert res.metrics.supersteps == 5

    def test_activation_is_message_driven(self):
        g = chain_graph()
        res = VertexCentricEngine(g, Propagate("v0")).run()
        # Superstep 1 computes all 5; each later superstep only the frontier.
        assert res.metrics.compute_calls == 5 + 4

    def test_receiver_combiner_folds(self):
        g = StaticGraph()
        for vid in ["a", "b", "c", "z"]:
            g.add_vertex(vid)
        for src in ["a", "b", "c"]:
            g.add_edge(src, "z")

        class FanIn(VertexProgram):
            name = "fanin"
            combiner = sum_combiner()
            seen = None

            def init(self, ctx):
                ctx.value = 0

            def compute(self, ctx, messages):
                if ctx.superstep == 1:
                    ctx.send_to_neighbors(1)
                elif messages:
                    FanIn.seen = list(messages)
                    ctx.value = messages[0]

        res = VertexCentricEngine(g, FanIn()).run()
        assert FanIn.seen == [3]  # folded receiver-side
        assert res.values["z"] == 3
        assert res.metrics.messages_sent == 3  # counted pre-combine
        assert res.metrics.combiner_reductions == 2

    def test_fixed_supersteps(self):
        class Ticker(VertexProgram):
            name = "tick"
            fixed_supersteps = 4

            def init(self, ctx):
                ctx.value = 0

            def compute(self, ctx, messages):
                ctx.value += 1

        g = chain_graph(3)
        res = VertexCentricEngine(g, Ticker()).run()
        assert all(v == 4 for v in res.values.values())
        assert res.metrics.supersteps == 4

    def test_master_halt(self):
        class Forever(VertexProgram):
            name = "forever"

            def init(self, ctx):
                ctx.value = 0

            def compute(self, ctx, messages):
                ctx.value += 1
                ctx.send(ctx.vertex_id, 1)  # self-message: never quiesces

            def master_compute(self, master):
                if master.superstep >= 3:
                    master.halt()

        g = chain_graph(2)
        res = VertexCentricEngine(g, Forever()).run()
        assert res.metrics.supersteps == 3

    def test_aggregators(self):
        class Counter(VertexProgram):
            name = "counter"
            fixed_supersteps = 2
            observed = None

            def init(self, ctx):
                ctx.value = 0

            def compute(self, ctx, messages):
                if ctx.superstep == 1:
                    ctx.aggregate("total", 1)
                else:
                    Counter.observed = ctx.get_aggregate("total")

            def aggregators(self):
                return {"total": lambda a, b: a + b}

        g = chain_graph(4)
        VertexCentricEngine(g, Counter()).run()
        assert Counter.observed == 4

    def test_runaway_guard(self):
        class Bouncer(VertexProgram):
            name = "bounce"

            def init(self, ctx):
                ctx.value = 0

            def compute(self, ctx, messages):
                ctx.send(ctx.vertex_id, 1)

        g = chain_graph(1)
        with pytest.raises(RuntimeError, match="exceeded"):
            VertexCentricEngine(g, Bouncer(), max_supersteps=10).run()
