"""Docs-rot protection: the README's Python code blocks actually run."""

import re
from pathlib import Path

README = (Path(__file__).parent.parent / "README.md").read_text(encoding="utf-8")


def python_blocks():
    return re.findall(r"```python\n(.*?)```", README, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert python_blocks(), "README lost its code examples"


def test_readme_python_blocks_execute():
    for i, block in enumerate(python_blocks()):
        namespace: dict = {}
        try:
            exec(compile(block, f"README.md block {i}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(f"README block {i} failed: {exc}\n{block}") from exc


def test_readme_quickstart_claims_hold():
    """The quickstart block ends by printing B's three partitions."""
    block = python_blocks()[0]
    namespace: dict = {}
    exec(compile(block, "README quickstart", "exec"), namespace)
    result = namespace["result"]
    from repro.core.interval import FOREVER, Interval

    assert result.states["B"].partitions() == [
        (Interval(0, 4), FOREVER),
        (Interval(4, 6), 4),
        (Interval(6, FOREVER), 3),
    ]
