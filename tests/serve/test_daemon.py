"""End-to-end tests for the Unix-socket daemon and its client.

The daemon runs in-process on a background thread; the client speaks the
real wire protocol over a real socket, so these tests cover frame
round-trips, typed error propagation across the wire, concurrent
connections, and clean shutdown (threads drained, service closed, socket
file removed).
"""

import io
import json
import os
import socket
import threading

import pytest

from repro import api
from repro.datasets import transit_graph
from repro.serve import BadQueryError, QueueFullError, ServeError
from repro.serve.client import QueryClient
from repro.serve.daemon import ServeDaemon
from repro.serve.wire import encode_varint


@pytest.fixture
def daemon(tmp_path):
    """A running daemon over transit on a fresh socket; cleans up after."""
    service = api.serve(transit_graph(), graph_name="transit", workers=4,
                        options={"serve_max_concurrency": 1,
                                 "serve_queue_depth": 0})
    d = ServeDaemon(service, str(tmp_path / "repro.sock"))
    d.start()  # bind before yielding so raw-socket tests can connect
    thread = threading.Thread(target=d.serve_forever, daemon=True)
    thread.start()
    try:
        yield d
    finally:
        d.request_shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive()


class TestProtocol:
    def test_ping(self, daemon):
        with QueryClient.connect(daemon.socket_path) as client:
            assert client.ping()

    def test_query_roundtrip_and_cache_hit(self, daemon):
        with QueryClient.connect(daemon.socket_path) as client:
            cold = client.query("SSSP", params={"source": "A"})
            warm = client.query("SSSP", params={"source": "A"})
        assert not cold.cache_hit
        assert warm.cache_hit
        assert cold.payload == warm.payload
        doc = cold.doc
        assert doc["algorithm"] == "SSSP"
        assert doc["graph"] == "transit"

    def test_wire_answer_matches_in_process_answer(self, daemon):
        with QueryClient.connect(daemon.socket_path) as client:
            remote = client.query("BFS", params={"source": "A"},
                                  interval=(0, 3))
        local = daemon.service.query("BFS", params={"source": "A"},
                                     interval=(0, 3))
        assert local.cache_hit  # the remote query populated the cache
        assert remote.payload == local.payload

    def test_stats(self, daemon):
        with QueryClient.connect(daemon.socket_path) as client:
            client.query("PR")
            stats = client.stats()
        assert stats["queries_served"] == 1
        assert stats["graph"] == "transit"
        assert stats["supported_algorithms"] == ["BFS", "SSSP", "PR",
                                                 "EAT", "RH"]

    def test_typed_errors_cross_the_wire(self, daemon):
        with QueryClient.connect(daemon.socket_path) as client:
            with pytest.raises(BadQueryError, match="WCC"):
                client.query("WCC")
            # The error did not poison the connection.
            assert client.ping()
            answer = client.query("EAT", params={"source": "A"})
            assert answer.doc["vertices"]

    def test_queue_full_crosses_the_wire(self, daemon):
        with QueryClient.connect(daemon.socket_path) as holder, \
                QueryClient.connect(daemon.socket_path) as prober:
            barrier = threading.Thread(
                target=lambda: holder.query(
                    "BFS", params={"source": "B"},
                    options={"hold_s": 1.0, "no_cache": True}))
            barrier.start()
            import time

            time.sleep(0.3)
            with pytest.raises(QueueFullError) as exc:
                prober.query("SSSP", params={"source": "B"},
                             options={"no_cache": True})
            barrier.join()
            assert exc.value.code == "queue_full"

    def test_concurrent_clients(self, daemon):
        """Four clients at once against one lane with queue depth 0:
        rejected clients follow the documented backpressure contract
        (back off and retry) and every query is eventually answered."""
        import time

        answers = []

        def ask(source):
            with QueryClient.connect(daemon.socket_path) as client:
                while True:
                    try:
                        answers.append(client.query(
                            "BFS", params={"source": source}))
                        return
                    except QueueFullError:
                        time.sleep(0.05)

        threads = [threading.Thread(target=ask, args=(s,))
                   for s in ("A", "B", "C", "A")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(answers) == 4
        by_a = [a.payload for a in answers if a.doc and "A" in str(a.doc)]
        assert by_a  # all four queries answered


class TestMalformedInput:
    def test_garbage_bytes_drop_connection_not_daemon(self, daemon):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(daemon.socket_path)
        # A length prefix promising a huge frame, then a torn stream.
        raw.sendall(encode_varint(100) + b"\xff" * 10)
        raw.close()
        with QueryClient.connect(daemon.socket_path) as client:
            assert client.ping()  # daemon survived

    def test_non_tuple_request_is_a_typed_error(self, daemon):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            raw.connect(daemon.socket_path)
            from repro.serve.wire import read_frame, write_frame

            write_frame(raw, "not a tagged tuple")
            response = read_frame(raw.recv)
            assert response[0] == "err"
            assert response[1] == "bad_query"
        finally:
            raw.close()


class TestShutdown:
    def test_shutdown_frame_stops_daemon_and_removes_socket(self, tmp_path):
        service = api.serve(transit_graph(), graph_name="transit", workers=4)
        path = str(tmp_path / "bye.sock")
        daemon = ServeDaemon(service, path)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        with QueryClient.connect(path) as client:
            client.query("BFS", params={"source": "A"})
            client.shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert not os.path.exists(path)
        # The service was closed with the daemon.
        with pytest.raises(ServeError, match="closed"):
            service.query("BFS", options={"no_cache": True})

    def test_stale_socket_file_is_replaced(self, tmp_path):
        path = str(tmp_path / "stale.sock")
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(path)
        dead.close()  # leaves the file behind, as a crashed daemon would
        service = api.serve(transit_graph(), graph_name="transit", workers=4)
        daemon = ServeDaemon(service, path)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            with QueryClient.connect(path) as client:
                assert client.ping()
        finally:
            daemon.request_shutdown()
            thread.join(timeout=15)

    def test_close_is_idempotent(self, tmp_path):
        service = api.serve(transit_graph(), graph_name="transit", workers=4)
        daemon = ServeDaemon(service, str(tmp_path / "idem.sock"))
        daemon.start()
        daemon.close()
        daemon.close()
