"""The live metrics endpoint: `GET /metrics` over a real GraphService.

Covers the scrape body (registry metrics, latency histogram series,
per-lane heartbeat gauges), the HTTP surface (content type, 404 for
anything but /metrics, ephemeral port binding), lane heartbeat
bookkeeping, and endpoint lifecycle (idempotent stop, context manager).
"""

import urllib.error
import urllib.request

import pytest

from repro import api
from repro.datasets import transit_graph
from repro.serve.metrics_http import MetricsEndpoint, render_scrape


@pytest.fixture
def service():
    with api.serve(transit_graph(), graph_name="transit", workers=5,
                   options={"serve_max_concurrency": 2}) as svc:
        yield svc


def _scrape(port, path="/metrics"):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response, response.read().decode("utf-8")


class TestRenderScrape:
    def test_carries_registry_metrics_and_heartbeats(self, service):
        service.query("SSSP", params={"source": "A"})
        service.query("SSSP", params={"source": "A"})  # cache hit, no lane
        body = render_scrape(service)
        assert "# TYPE repro_queries_served_total counter" in body
        served = next(line for line in body.splitlines()
                      if line.startswith("repro_queries_served_total"))
        assert int(served.rsplit(" ", 1)[1]) == 2
        # The latency histogram observed both queries.
        count = next(line for line in body.splitlines()
                     if line.startswith("repro_query_latency_seconds_count"))
        assert int(count.rsplit(" ", 1)[1]) == 2
        assert 'le="+Inf"' in body
        # One heartbeat pair per lane, all idle after the queries.
        for lane in range(2):
            assert f'repro_serve_lane_queries_total{{lane="{lane}"}}' in body
            assert (f'repro_serve_lane_idle_seconds{{lane="{lane}",busy="0"}}'
                    in body)

    def test_lane_heartbeats_count_real_executions_only(self, service):
        service.query("BFS", params={"source": "A"})
        service.query("BFS", params={"source": "A"})  # hit: no lane taken
        beats = service.heartbeats()
        assert [b["lane"] for b in beats] == [0, 1]
        assert sum(b["queries"] for b in beats) == 1
        assert all(not b["busy"] for b in beats)
        assert all(b["age_s"] >= 0.0 for b in beats)


class TestEndpoint:
    def test_scrape_over_http_on_ephemeral_port(self, service):
        service.query("PR")
        with MetricsEndpoint(service, port=0) as endpoint:
            assert endpoint.port > 0
            response, body = _scrape(endpoint.port)
            assert response.status == 200
            assert response.headers["Content-Type"] == \
                "text/plain; version=0.0.4; charset=utf-8"
            # Byte-equality with render_scrape can't hold (idle ages move
            # between renders); assert the load-bearing series instead.
            assert "# TYPE repro_queries_served_total counter" in body
            assert "repro_query_latency_seconds_bucket" in body
            assert 'repro_serve_lane_queries_total{lane="0"}' in body
            assert 'repro_serve_lane_idle_seconds{lane="0"' in body

    def test_only_metrics_path_is_served(self, service):
        with MetricsEndpoint(service, port=0) as endpoint:
            with pytest.raises(urllib.error.HTTPError) as err:
                _scrape(endpoint.port, "/stats")
            assert err.value.code == 404
            # and /metrics still answers afterwards
            response, _ = _scrape(endpoint.port)
            assert response.status == 200

    def test_stop_is_idempotent_and_port_requires_start(self, service):
        endpoint = MetricsEndpoint(service, port=0)
        with pytest.raises(RuntimeError):
            endpoint.port
        endpoint.start()
        port = endpoint.port
        endpoint.stop()
        endpoint.stop()  # second stop is a no-op
        with pytest.raises(RuntimeError):
            endpoint.port
        with pytest.raises(urllib.error.URLError):
            _scrape(port)
