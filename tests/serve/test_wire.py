"""Tests for the serving wire frames (length prefix + versioned body).

Mirrors ``tests/runtime/test_encoding.py``: the frames reuse the engine's
tagged varint payload codec, so the same recursive value strategy must
round-trip through a frame bit-exactly, and version mismatches must be
rejected naming both versions.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import FOREVER
from repro.runtime.encoding import encode_payload, encode_varint
from repro.serve.wire import (
    EOF,
    SERVE_WIRE_FORMAT,
    decode_frame,
    decode_frame_body,
    encode_frame,
    encode_frame_body,
    items_to_dict,
    query_value,
    read_frame,
    write_frame,
)

payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**80), max_value=2**80),
        st.integers(min_value=FOREVER - 4, max_value=FOREVER + 2**20),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    ),
    lambda inner: st.tuples(inner, inner),
    max_leaves=6,
)


@given(payloads)
@settings(max_examples=300, deadline=None)
def test_frame_roundtrip_property(value):
    decoded, end = decode_frame(encode_frame(value))
    assert decoded == value
    assert end == len(encode_frame(value))


@given(payloads)
@settings(max_examples=100, deadline=None)
def test_frame_body_roundtrip_property(value):
    body = encode_frame_body(value)
    assert body[0] == SERVE_WIRE_FORMAT
    assert decode_frame_body(body) == value


@given(st.lists(payloads, max_size=5))
@settings(max_examples=100, deadline=None)
def test_concatenated_frames_decode_sequentially(values):
    """A socket delivers frames back to back; each decode must report
    exactly where the next one starts."""
    buf = b"".join(encode_frame(v) for v in values)
    offset = 0
    decoded = []
    for _ in values:
        value, offset = decode_frame(buf, offset)
        decoded.append(value)
    assert decoded == values
    assert offset == len(buf)


@given(st.lists(payloads, max_size=5))
@settings(max_examples=100, deadline=None)
def test_read_frame_streams_frames_and_reports_clean_eof(values):
    stream = io.BytesIO(b"".join(encode_frame(v) for v in values))
    decoded = []
    while (value := read_frame(stream.read)) is not EOF:
        decoded.append(value)
    assert decoded == values


class TestVersionRejection:
    def test_future_version_rejected_naming_both_versions(self):
        body = bytes((SERVE_WIRE_FORMAT + 1,)) + encode_payload(("ping",))
        with pytest.raises(ValueError, match=r"format 2.*format 1|format 1.*format 2"):
            decode_frame_body(body)

    def test_stale_version_rejected(self):
        with pytest.raises(ValueError, match=r"format 0"):
            decode_frame_body(bytes((0,)) + encode_payload(None))

    def test_version_checked_before_payload(self):
        """A mismatched frame must be refused without attempting to parse
        its (possibly incompatible) payload bytes."""
        with pytest.raises(ValueError, match="wire format"):
            decode_frame_body(bytes((SERVE_WIRE_FORMAT + 1,)) + b"\xff\xff")


class TestMalformedFrames:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            decode_frame_body(b"")

    def test_trailing_bytes_rejected(self):
        body = encode_frame_body(("ping",)) + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            decode_frame_body(body)

    def test_truncated_frame_rejected(self):
        frame = encode_frame(("stats",))
        with pytest.raises(ValueError, match="truncated"):
            decode_frame(frame[:-1])

    def test_read_frame_raises_on_eof_mid_body(self):
        frame = encode_frame(("stats",))
        stream = io.BytesIO(frame[:-1])
        with pytest.raises(ValueError, match="mid-frame"):
            read_frame(stream.read)

    def test_read_frame_raises_on_eof_mid_length_prefix(self):
        # A length varint with its continuation bit set, then EOF.
        stream = io.BytesIO(encode_varint(2**20)[:1])
        with pytest.raises(ValueError, match="mid-frame"):
            read_frame(stream.read)

    def test_read_frame_eof_sentinel_on_empty_stream(self):
        assert read_frame(io.BytesIO(b"").read) is EOF

    def test_none_valued_frame_is_not_mistaken_for_eof(self):
        stream = io.BytesIO(encode_frame(None))
        assert read_frame(stream.read) is None
        assert read_frame(stream.read) is EOF


class TestRequestHelpers:
    def test_query_value_canonicalises_param_order(self):
        a = query_value("BFS", {"b": 1, "a": 2}, (0, 5), {"no_cache": True})
        b = query_value("BFS", {"a": 2, "b": 1}, (0, 5), {"no_cache": True})
        assert a == b
        assert a[2] == (("a", 2), ("b", 1))

    def test_query_value_roundtrips_through_a_frame(self):
        value = query_value("SSSP", {"source": "A"}, (0, None),
                            {"timeout_s": 1.5})
        assert decode_frame(encode_frame(value))[0] == value

    def test_items_to_dict_inverts_items(self):
        value = query_value("PR", {"x": 1}, None, {"hold_s": 0.5})
        assert items_to_dict(value[2]) == {"x": 1}
        assert items_to_dict(value[4]) == {"hold_s": 0.5}
        assert items_to_dict(()) == {}

    def test_items_to_dict_rejects_malformed_pairs(self):
        with pytest.raises(ValueError, match="malformed"):
            items_to_dict((("a", 1, 2),))

    def test_write_frame_sends_whole_encoding(self):
        sent = []

        class Sock:
            def sendall(self, buf):
                sent.append(bytes(buf))

        write_frame(Sock(), ("pong",))
        assert b"".join(sent) == encode_frame(("pong",))
