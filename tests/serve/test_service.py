"""Tests for the GraphService serving tier.

The load-bearing property is *serving equivalence*: every answer the
service produces — cached or computed, serial or parallel, full-horizon
or interval-sliced — must be bit-identical to a direct ``api.run`` over
the equivalent graph.  Around that: the FIFO scheduler's backpressure
contract, deadline cancellation with a provably clean engine afterwards
(satellite: executor lifecycle reuse), the cache counters, and the
query-lifecycle events/metrics.
"""

import io
import json
import threading
import time

import pytest

from repro import api
from repro.algorithms.td.sssp import TemporalSSSP
from repro.algorithms.ti.bfs import TemporalBFS
from repro.algorithms.ti.pagerank import TemporalPageRank
from repro.core.interval import Interval
from repro.core.results_io import export_states_json
from repro.datasets import transit_graph
from repro.obs.events import EVENT_SCHEMA_VERSION
from repro.obs.exporters import prometheus_text, render_summary
from repro.obs.observers import InMemoryEvents
from repro.query.slice import temporal_slice
from repro.runtime.cluster import SimulatedCluster
from repro.serve import (
    BadQueryError,
    GraphService,
    QueryRequest,
    QueryTimeoutError,
    QueueFullError,
    ServeError,
)

WORKERS = 4


def make_program(algorithm, graph, source="A"):
    if algorithm == "PR":
        return TemporalPageRank(graph)
    return {"BFS": TemporalBFS, "SSSP": TemporalSSSP}[algorithm](source)


def direct_payload(graph, algorithm, source="A"):
    """What a one-shot batch run answers — the serving ground truth."""
    result = api.run(
        graph,
        make_program(algorithm, graph, source),
        cluster=SimulatedCluster(WORKERS),
        graph_name="transit",
    )
    doc = export_states_json(result, io.StringIO())
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)


def make_service(**options):
    return api.serve(transit_graph(), graph_name="transit", workers=WORKERS,
                     options=options)


class TestServingEquivalence:
    @pytest.mark.parametrize("executor", ["serial", "parallel"])
    @pytest.mark.parametrize("algorithm", ["BFS", "SSSP", "PR"])
    def test_cached_and_uncached_answers_match_direct_run(
        self, algorithm, executor
    ):
        options = {"executor": executor}
        if executor == "parallel":
            options["executor_processes"] = 2
        with make_service(**options) as service:
            params = {"source": "A"} if algorithm != "PR" else None
            cold = service.query(algorithm, params=params)
            warm = service.query(algorithm, params=params)
        assert not cold.cache_hit
        assert warm.cache_hit
        expected = direct_payload(transit_graph(), algorithm)
        assert cold.payload == expected
        assert warm.payload == expected

    def test_three_query_session_matches_three_direct_runs(self):
        """The acceptance scenario: cold, repeat, different interval —
        bit-identical to three direct ``api.run`` calls, with the repeat
        served from cache (hit counter exactly 1)."""
        with make_service() as service:
            a1 = service.query("SSSP", params={"source": "A"})
            a2 = service.query("SSSP", params={"source": "A"})
            a3 = service.query("SSSP", params={"source": "A"},
                               interval=(0, 3))
            hits = service.cache.stats.hits
            metrics_hits = service.metrics.cache_hits
        assert (a1.cache_hit, a2.cache_hit, a3.cache_hit) == (
            False, True, False)
        assert hits == 1
        assert metrics_hits == 1
        assert a1.payload == direct_payload(transit_graph(), "SSSP")
        assert a2.payload == a1.payload
        sliced = temporal_slice(transit_graph(), Interval(0, 3))
        assert a3.payload == direct_payload(sliced, "SSSP")
        assert a3.payload != a1.payload  # the interval genuinely matters

    def test_interval_accepts_interval_objects(self):
        with make_service() as service:
            a = service.query("BFS", params={"source": "A"},
                              interval=Interval(0, 3))
            b = service.query("BFS", params={"source": "A"},
                              interval=(0, 3))
        assert b.cache_hit  # same canonical key
        assert a.payload == b.payload

    def test_no_cache_option_bypasses_the_cache(self):
        with make_service() as service:
            service.query("BFS", params={"source": "A"})
            again = service.query("BFS", params={"source": "A"},
                                  options={"no_cache": True})
            assert not again.cache_hit
            assert service.cache.stats.hits == 0

    def test_default_source_is_deterministic(self):
        with make_service() as service:
            a = service.query("BFS")
            b = service.query("BFS")
        assert b.cache_hit
        assert a.payload == b.payload


class TestCacheKeys:
    def test_key_carries_graph_and_config_fingerprints(self):
        with make_service() as service:
            key = service._cache_key("BFS", (("source", "A"),), None)
        assert service.graph_fp in key
        assert service.config_fp in key

    def test_different_graph_means_different_key(self):
        s1 = GraphService(transit_graph(), graph_name="transit",
                          workers=WORKERS)
        from repro.datasets import load_surrogate

        s2 = GraphService(load_surrogate("gplus", scale=0.25),
                          graph_name="gplus", workers=WORKERS)
        try:
            k1 = s1._cache_key("BFS", (), None)
            k2 = s2._cache_key("BFS", (), None)
            assert k1 != k2
            assert s1.graph_fp != s2.graph_fp
        finally:
            s1.close()
            s2.close()

    def test_different_cluster_shape_means_different_key(self):
        s1 = GraphService(transit_graph(), workers=4)
        s2 = GraphService(transit_graph(), workers=8)
        try:
            assert s1.graph_fp == s2.graph_fp
            assert s1.config_fp != s2.config_fp
        finally:
            s1.close()
            s2.close()

    def test_eviction_under_byte_budget(self):
        # Each transit answer is ~400 bytes; a 500-byte budget holds one.
        with make_service(serve_cache_bytes=500) as service:
            service.query("SSSP", params={"source": "A"})
            service.query("SSSP", params={"source": "B"})
            assert service.metrics.cache_evictions == 1
            assert service.metrics.cache_entries == 1
            # The evicted first answer recomputes (miss), not a stale hit.
            again = service.query("SSSP", params={"source": "A"})
            assert not again.cache_hit


class TestBackpressure:
    def test_queue_full_rejection_is_typed_and_counted(self):
        with make_service(serve_max_concurrency=1,
                          serve_queue_depth=0) as service:
            release = threading.Event()
            started = threading.Event()

            def hold():
                started.set()
                service.query("BFS", params={"source": "B"},
                              options={"hold_s": 1.0, "no_cache": True})

            thread = threading.Thread(target=hold)
            thread.start()
            started.wait()
            time.sleep(0.3)  # let the holder take the single lane
            with pytest.raises(QueueFullError) as exc:
                service.query("SSSP", params={"source": "B"},
                              options={"no_cache": True})
            thread.join()
            assert exc.value.code == "queue_full"
            assert exc.value.max_depth == 0
            assert service.metrics.queries_rejected == 1
            # Rejected work ran nothing and cached nothing.
            assert service.metrics.queries_served == 1

    def test_cache_hits_bypass_the_queue(self):
        """A hit needs no lane: even with the only lane held, cached
        queries answer immediately instead of queueing behind it."""
        with make_service(serve_max_concurrency=1,
                          serve_queue_depth=0) as service:
            service.query("BFS", params={"source": "A"})  # populate

            def hold():
                service.query("SSSP", params={"source": "B"},
                              options={"hold_s": 1.0, "no_cache": True})

            thread = threading.Thread(target=hold)
            thread.start()
            time.sleep(0.3)
            hit = service.query("BFS", params={"source": "A"})
            thread.join()
            assert hit.cache_hit

    def test_queued_query_runs_when_lane_frees(self):
        with make_service(serve_max_concurrency=1,
                          serve_queue_depth=2) as service:
            answers = []

            def q(source):
                answers.append(service.query(
                    "BFS", params={"source": source},
                    options={"hold_s": 0.2, "no_cache": True}))

            threads = [threading.Thread(target=q, args=(s,))
                       for s in ("A", "B", "C")]
            for t in threads:
                t.start()
                time.sleep(0.05)
            for t in threads:
                t.join()
            assert len(answers) == 3
            assert service.metrics.queries_served == 3
            assert service.metrics.queue_depth_peak >= 1
            assert service.metrics.queue_depth == 0


class TestDeadlines:
    @pytest.mark.parametrize("executor", ["serial", "parallel"])
    def test_timeout_cancels_and_lane_recovers_bit_identical(self, executor):
        """Satellite: after a cancelled run the lane's engine and warm
        executor are provably clean — the same query re-run answers
        bit-identically to a never-cancelled service."""
        options = {"executor": executor, "serve_max_concurrency": 1}
        if executor == "parallel":
            options["executor_processes"] = 2
        with make_service(**options) as service:
            with pytest.raises(QueryTimeoutError) as exc:
                service.query("PR", options={"timeout_s": 1e-9,
                                             "no_cache": True})
            assert exc.value.code == "timeout"
            assert service.metrics.queries_timed_out == 1
            after = service.query("PR")
        assert after.payload == direct_payload(transit_graph(), "PR")

    def test_timeout_in_queue_wait(self):
        with make_service(serve_max_concurrency=1,
                          serve_queue_depth=4) as service:
            def hold():
                service.query("BFS", params={"source": "B"},
                              options={"hold_s": 0.8, "no_cache": True})

            thread = threading.Thread(target=hold)
            thread.start()
            time.sleep(0.3)
            with pytest.raises(QueryTimeoutError):
                service.query("SSSP", params={"source": "B"},
                              options={"timeout_s": 0.05, "no_cache": True})
            thread.join()
            assert service.metrics.queries_timed_out == 1
            # The queue ticket was withdrawn — nothing leaks.
            assert service.metrics.queue_depth == 0

    def test_non_positive_timeout_rejected(self):
        with make_service() as service:
            with pytest.raises(BadQueryError, match="timeout_s"):
                service.query("BFS", options={"timeout_s": 0})


class TestBadQueries:
    def test_unknown_algorithm(self):
        with make_service() as service:
            with pytest.raises(BadQueryError, match="WCC"):
                service.query("WCC")

    def test_unknown_parameter(self):
        with make_service() as service:
            with pytest.raises(BadQueryError, match="damping"):
                service.query("PR", params={"damping": 0.9})

    def test_unknown_source_vertex(self):
        with make_service() as service:
            with pytest.raises(BadQueryError, match="ZZZ"):
                service.query("BFS", params={"source": "ZZZ"})

    def test_malformed_interval(self):
        with make_service() as service:
            with pytest.raises(BadQueryError, match="interval"):
                service.query("BFS", interval=(5, 2))
            with pytest.raises(BadQueryError, match="interval"):
                service.query("BFS", interval="0-5")

    def test_interval_past_every_lifespan_rejected(self):
        """An interval no entity of the graph survives into is a typed bad
        query, not a crash (transit vertices are unbounded, so this needs
        a graph with finite lifespans)."""
        from repro.graph.builder import TemporalGraphBuilder

        builder = TemporalGraphBuilder()
        builder.add_vertex("A", 0, 10)
        builder.add_vertex("B", 0, 10)
        builder.add_edge("A", "B", 2, 8, eid="e1")
        service = GraphService(builder.build(), graph_name="tiny",
                               workers=WORKERS)
        try:
            with pytest.raises(BadQueryError):
                service.query("BFS", params={"source": "A"},
                              interval=(5000, 6000))
        finally:
            service.close()

    def test_closed_service_rejects_queries(self):
        service = make_service()
        service.close()
        with pytest.raises(ServeError, match="closed"):
            service.query("BFS", options={"no_cache": True})
        service.close()  # idempotent


class TestObservability:
    def test_query_lifecycle_events_are_emitted_and_schema_valid(self):
        events = InMemoryEvents()
        service = api.serve(transit_graph(), graph_name="transit",
                            workers=WORKERS, observe=events)
        with service:
            service.query("SSSP", params={"source": "A"})
            service.query("SSSP", params={"source": "A"})
        types = [r["type"] for r in events.records]
        # Cold query: admitted, engine run bracket, end.
        assert types[0] == "query_admitted"
        assert types[1] == "query_start"
        assert not types[1:types.index("query_end")].count("cache_hit")
        assert "run_start" in types and "run_end" in types
        # Warm query: admitted, cache_hit, start, end — no engine run.
        warm = types[types.index("query_end") + 1:]
        assert warm == ["query_admitted", "cache_hit", "query_start",
                        "query_end"]
        assert types.count("run_start") == 1
        # Every record passed validate_event inside EventStream.emit and
        # carries the current schema version.
        assert all(r["v"] == EVENT_SCHEMA_VERSION for r in events.records)
        starts = [r for r in events.records if r["type"] == "query_start"]
        assert [s["data"]["cache_hit"] for s in starts] == [False, True]
        ends = [r for r in events.records if r["type"] == "query_end"]
        assert all(e["data"]["status"] == "ok" for e in ends)
        assert all(e["wall"]["latency_s"] >= 0 for e in ends)

    def test_cache_evict_event(self):
        events = InMemoryEvents()
        service = api.serve(
            transit_graph(), graph_name="transit", workers=WORKERS,
            options={"serve_cache_bytes": 500}, observe=events,
        )
        with service:
            service.query("SSSP", params={"source": "A"})
            service.query("SSSP", params={"source": "B"})
        evictions = events.of_type("cache_evict")
        assert len(evictions) == 1
        assert evictions[0]["data"]["evicted_entries"] == 1

    def test_metrics_render_in_both_exporters(self):
        with make_service() as service:
            service.query("BFS", params={"source": "A"})
            service.query("BFS", params={"source": "A"})
            prom = prometheus_text(service.metrics)
            summary = render_summary(service.metrics)
        assert 'repro_queries_served_total{platform="serve",' in prom
        assert "repro_cache_hits_total" in prom
        assert "repro_queue_depth" in prom
        assert "queries served" in summary
        assert "cache hit rate" in summary
        assert "0.500" in summary  # 1 hit / 2 lookups

    def test_stats_snapshot_is_json_friendly(self):
        with make_service() as service:
            service.query("BFS", params={"source": "A"})
            snapshot = service.stats()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["queries_served"] == 1
        assert snapshot["lanes"] == 1


class TestExecutorLifecycleReuse:
    """Satellite: one executor instance across many runs."""

    def test_parallel_executor_instance_reused_across_api_runs(self):
        from repro.runtime.executor import ParallelExecutor

        executor = ParallelExecutor(processes=2)
        graph = transit_graph()
        r1 = api.run(graph, TemporalSSSP("A"),
                     cluster=SimulatedCluster(WORKERS),
                     options={"executor": executor})
        r2 = api.run(graph, TemporalSSSP("A"),
                     cluster=SimulatedCluster(WORKERS),
                     options={"executor": executor})
        assert (export_states_json(r1, io.StringIO())
                == export_states_json(r2, io.StringIO()))
        executor.close()
        executor.close()  # idempotent: second close finds no processes

    def test_start_clears_a_stale_aborted_run(self):
        """A lane whose previous run was torn down without reaching
        ``abort`` must not leak its workers into the next run: ``start``
        clears any stale processes first."""
        import multiprocessing as mp

        from repro.runtime.executor import ParallelExecutor

        executor = ParallelExecutor(processes=2)
        stale = mp.get_context("fork").Process(target=time.sleep,
                                               args=(60,), daemon=True)
        stale.start()
        parent_conn, child_conn = mp.Pipe()
        executor._procs.append(stale)
        executor._conns.append(parent_conn)
        result = api.run(transit_graph(), TemporalSSSP("A"),
                         cluster=SimulatedCluster(WORKERS),
                         graph_name="transit",
                         options={"executor": executor})
        assert not stale.is_alive()  # reclaimed by the pre-start guard
        expected = json.loads(direct_payload(transit_graph(), "SSSP"))
        assert export_states_json(result, io.StringIO()) == expected
        executor.close()
        child_conn.close()

    def test_service_lanes_hold_executor_instances(self):
        with make_service(executor="parallel", executor_processes=2,
                          serve_max_concurrency=2) as service:
            executors = {id(lane.executor) for lane in service._lanes}
            assert len(executors) == 2  # one resident instance per lane
            a = service.query("BFS", params={"source": "A"},
                              options={"no_cache": True})
            b = service.query("BFS", params={"source": "A"},
                              options={"no_cache": True})
            assert a.payload == b.payload


class TestSubmitRequests:
    def test_submit_takes_a_request_object(self):
        with make_service() as service:
            answer = service.submit(QueryRequest(
                algorithm="SSSP", params={"source": "A"}, interval=(0, 3)))
        assert answer.interval == (0, 3)
        assert answer.doc["algorithm"] == "SSSP"
        assert answer.doc["vertices"]
