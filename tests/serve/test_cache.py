"""Tests for the interval-aware result cache (LRU under a byte budget)."""

import pytest

from repro.serve.cache import ResultCache


def key(i):
    return ("BFS", (("source", "A"),), (0, i), "graph-fp", "config-fp")


class TestLookupAndRecency:
    def test_miss_then_hit(self):
        cache = ResultCache(1024)
        assert cache.get(key(1)) is None
        cache.put(key(1), "payload")
        assert cache.get(key(1)) == "payload"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5

    def test_get_refreshes_recency(self):
        cache = ResultCache(1024)
        cache.put(key(1), "a")
        cache.put(key(2), "b")
        cache.get(key(1))
        assert cache.keys() == (key(2), key(1))  # LRU → MRU

    def test_put_replaces_existing_entry(self):
        cache = ResultCache(1024)
        cache.put(key(1), "short")
        cache.put(key(1), "a much longer replacement payload")
        assert cache.get(key(1)) == "a much longer replacement payload"
        assert len(cache) == 1
        assert cache.bytes_used == len("a much longer replacement payload")

    def test_hit_rate_zero_before_any_lookup(self):
        assert ResultCache(10).stats.hit_rate == 0.0


class TestByteBudget:
    def test_evicts_lru_until_budget_holds(self):
        cache = ResultCache(10)
        cache.put(key(1), "aaaa")  # 4 bytes
        cache.put(key(2), "bbbb")  # 8 total
        cache.put(key(3), "cccc")  # 12 → evict key(1)
        assert cache.get(key(1)) is None
        assert cache.get(key(2)) == "bbbb"
        assert cache.get(key(3)) == "cccc"
        assert cache.stats.evictions == 1
        assert cache.bytes_used == 8

    def test_one_put_can_evict_many(self):
        cache = ResultCache(10)
        for i in range(5):
            cache.put(key(i), "xx")  # 10 bytes across 5 entries
        cache.put(key(9), "yyyyyyyy")  # 8 bytes: forces out 4 entries
        assert cache.stats.evictions == 4
        assert len(cache) == 2

    def test_oversized_payload_never_admitted(self):
        cache = ResultCache(4)
        cache.put(key(1), "toolarge")
        assert len(cache) == 0
        assert cache.get(key(1)) is None
        assert cache.stats.evictions == 0

    def test_zero_budget_disables_caching(self):
        cache = ResultCache(0)
        cache.put(key(1), "x")
        assert len(cache) == 0
        assert cache.get(key(1)) is None

    def test_byte_accounting_is_utf8(self):
        cache = ResultCache(1024)
        cache.put(key(1), "héllo")  # é is 2 bytes in UTF-8
        assert cache.bytes_used == 6

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(-1)


class TestEvictionCallback:
    def test_on_evict_called_once_per_wave(self):
        waves = []
        cache = ResultCache(10, on_evict=lambda n, b: waves.append((n, b)))
        for i in range(5):
            cache.put(key(i), "xx")
        cache.put(key(9), "yyyyyyyy")
        assert waves == [(4, 10)]  # one call: 4 entries out, 10 bytes left

    def test_no_callback_without_eviction(self):
        waves = []
        cache = ResultCache(100, on_evict=lambda n, b: waves.append(n))
        cache.put(key(1), "a")
        cache.put(key(2), "b")
        assert waves == []


class TestFingerprintInvalidation:
    def test_changed_fingerprint_is_a_different_key(self):
        """The invalidation story: a cached answer survives only as long
        as both fingerprints match — a mutated graph or a different
        execution config produces a different key, which is a miss."""
        cache = ResultCache(1024)
        base = ("BFS", (("source", "A"),), None, "graph-v1", "config-v1")
        cache.put(base, "answer")
        assert cache.get(("BFS", (("source", "A"),), None, "graph-v2",
                          "config-v1")) is None
        assert cache.get(("BFS", (("source", "A"),), None, "graph-v1",
                          "config-v2")) is None
        assert cache.get(base) == "answer"


class TestClear:
    def test_clear_keeps_lifetime_counters(self):
        cache = ResultCache(1024)
        cache.put(key(1), "a")
        cache.get(key(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.bytes_used == 0
        assert cache.get(key(1)) is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
