"""Tests for temporal k-core decomposition."""

import pytest

from repro.algorithms.td.kcore import (
    DEAD,
    TemporalKCore,
    in_core,
    run_temporal_kcore,
    snapshot_kcore,
)
from repro.algorithms.ti.wcc import make_undirected
from repro.graph.builder import TemporalGraphBuilder
from repro.graph.snapshots import snapshot_at


def triangle_with_tail():
    """A triangle (2-core) with a pendant vertex, edges phasing in/out."""
    b = TemporalGraphBuilder()
    for vid in "abcd":
        b.add_vertex(vid, 0, 8)
    b.add_edge("a", "b", 0, 8)
    b.add_edge("b", "c", 0, 6)   # triangle breaks at t=6
    b.add_edge("c", "a", 0, 8)
    b.add_edge("c", "d", 2, 5)   # pendant only mid-window
    return b.build()


class TestSmallCases:
    def test_triangle_is_2core_while_intact(self):
        result = run_temporal_kcore(triangle_with_tail(), k=2)
        for t in range(6):
            for vid in "abc":
                assert in_core(result.value_at(vid, t)), (vid, t)
        for t in range(6, 8):
            for vid in "abc":
                assert result.value_at(vid, t) == DEAD, (vid, t)

    def test_pendant_never_in_2core(self):
        result = run_temporal_kcore(triangle_with_tail(), k=2)
        for t in range(8):
            assert result.value_at("d", t) == DEAD

    def test_1core_follows_any_edge(self):
        result = run_temporal_kcore(triangle_with_tail(), k=1)
        assert in_core(result.value_at("d", 3))
        assert result.value_at("d", 0) == DEAD  # c-d edge starts at 2

    def test_cascading_removal(self):
        """A chain: removing the end cascades through the whole chain."""
        b = TemporalGraphBuilder()
        for i in range(5):
            b.add_vertex(f"v{i}", 0, 4)
        for i in range(4):
            b.add_edge(f"v{i}", f"v{i + 1}", 0, 4)
        result = run_temporal_kcore(b.build(), k=2)
        for i in range(5):
            for t in range(4):
                assert result.value_at(f"v{i}", t) == DEAD

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TemporalKCore(0)


class TestAgainstReference:
    def test_matches_per_snapshot_peeling(self, graph, horizon):
        result = run_temporal_kcore(graph, k=2)
        undirected = make_undirected(graph)
        for t in range(horizon):
            expected = snapshot_kcore(snapshot_at(undirected, t), k=2)
            for vid in graph.vertex_ids():
                assert in_core(result.value_at(vid, t)) == (vid in expected), (vid, t)

    @pytest.mark.parametrize("k", [1, 3])
    def test_matches_for_other_k(self, graph, horizon, k):
        result = run_temporal_kcore(graph, k=k)
        undirected = make_undirected(graph)
        for t in range(horizon):
            expected = snapshot_kcore(snapshot_at(undirected, t), k=k)
            for vid in graph.vertex_ids():
                assert in_core(result.value_at(vid, t)) == (vid in expected), (vid, t, k)
