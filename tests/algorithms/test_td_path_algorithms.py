"""Correctness of the TD path algorithms (SSSP, EAT, FAST, LD, TMST, RH)
against dense dynamic-programming references, on all three platforms."""

import pytest

from repro.algorithms.reference import (
    INF,
    temporal_eat,
    temporal_fast,
    temporal_ld,
    temporal_reach_grid,
    temporal_sssp_grid,
)
from repro.algorithms.td.eat import GoffishEAT, TemporalEAT, TgbEAT, earliest_arrival
from repro.algorithms.td.fast import (
    GoffishFAST,
    TemporalFAST,
    TgbFAST,
    fastest_duration,
    tgb_fastest_duration,
)
from repro.algorithms.td.ld import (
    GoffishLD,
    TemporalLD,
    TgbLD,
    latest_departure,
    tgb_latest_departure,
)
from repro.algorithms.td.reach import (
    GoffishReachability,
    TemporalReachability,
    TgbReachability,
    is_reachable,
)
from repro.algorithms.td.sssp import INFINITY, GoffishSSSP, TemporalSSSP, TgbSSSP
from repro.algorithms.td.tmst import GoffishTMST, TemporalTMST, TgbTMST, tmst_tree
from repro.baselines.goffish import GoffishEngine
from repro.baselines.tgb import run_tgb
from repro.core.engine import IntervalCentricEngine
from repro.graph.transform import build_transformed_graph

SOURCE = "v0"
TARGET = "v1"


class TestSSSP:
    def test_icm_matches_grid_pointwise(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalSSSP(SOURCE)).run()
        grid = temporal_sssp_grid(graph, SOURCE, horizon=horizon)
        for vid, row in grid.items():
            for t in range(horizon):
                assert result.value_at(vid, t) == row[t], (vid, t)

    def test_tgb_matches_grid_pointwise(self, graph, horizon):
        res = run_tgb(graph, TgbSSSP(SOURCE), horizon=horizon)
        grid = temporal_sssp_grid(graph, SOURCE, horizon=horizon)
        for vid, row in grid.items():
            for t in range(horizon):
                value = res.pointwise(vid, t, default=INFINITY)
                assert value == row[t], (vid, t)

    def test_goffish_matches_grid_pointwise(self, graph, horizon):
        res = GoffishEngine(graph, GoffishSSSP(SOURCE), horizon=horizon).run()
        grid = temporal_sssp_grid(graph, SOURCE, horizon=horizon)
        for vid, row in grid.items():
            for t in range(horizon):
                assert res.value_at(vid, t, default=INFINITY) == row[t], (vid, t)


class TestEAT:
    def test_icm_matches_reference(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalEAT(SOURCE)).run()
        expected = temporal_eat(graph, SOURCE, horizon=horizon)
        for vid, arrival in expected.items():
            got = earliest_arrival(result.states[vid])
            if arrival is None:
                assert got is None or got >= horizon, vid
            else:
                assert got == arrival, vid

    def test_tgb_matches_reference(self, graph, horizon):
        res = run_tgb(graph, TgbEAT(SOURCE), horizon=horizon)
        expected = temporal_eat(graph, SOURCE, horizon=horizon)
        for vid, arrival in expected.items():
            arrivals = [v for _, v in res.replicas_of(vid) if v is not None and v < INF]
            got = min(arrivals, default=None)
            if arrival is None:
                assert got is None or got >= horizon, vid
            else:
                assert got == arrival, vid

    def test_goffish_matches_reference(self, graph, horizon):
        res = GoffishEngine(graph, GoffishEAT(SOURCE), horizon=horizon).run()
        expected = temporal_eat(graph, SOURCE, horizon=horizon)
        for vid, arrival in expected.items():
            value = res.values.get(vid)
            got = None if value is None or value >= INF else value
            if arrival is None:
                assert got is None or got >= horizon, vid
            else:
                assert got == arrival, vid


class TestReachability:
    def test_icm_matches_reference(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalReachability(SOURCE)).run()
        grid = temporal_reach_grid(graph, SOURCE, horizon=horizon)
        for vid, row in grid.items():
            assert is_reachable(result.states[vid]) == any(row), vid

    def test_icm_pointwise(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalReachability(SOURCE)).run()
        grid = temporal_reach_grid(graph, SOURCE, horizon=horizon)
        for vid, row in grid.items():
            for t in range(horizon):
                assert bool(result.value_at(vid, t)) == row[t], (vid, t)

    def test_tgb_matches_reference(self, graph, horizon):
        res = run_tgb(graph, TgbReachability(SOURCE), horizon=horizon)
        grid = temporal_reach_grid(graph, SOURCE, horizon=horizon)
        for vid, row in grid.items():
            got = any(v for _, v in res.replicas_of(vid) if v)
            assert got == any(row), vid

    def test_goffish_matches_reference(self, graph, horizon):
        res = GoffishEngine(graph, GoffishReachability(SOURCE), horizon=horizon).run()
        grid = temporal_reach_grid(graph, SOURCE, horizon=horizon)
        for vid, row in grid.items():
            assert bool(res.values.get(vid)) == any(row), vid


class TestFAST:
    def test_icm_matches_reference(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalFAST(SOURCE, horizon=horizon)).run()
        expected = temporal_fast(graph, SOURCE, horizon=horizon)
        for vid, duration in expected.items():
            got = fastest_duration(result.states[vid])
            assert got == duration, vid

    def test_tgb_matches_reference(self, graph, horizon):
        res = run_tgb(graph, TgbFAST(SOURCE), horizon=horizon)
        expected = temporal_fast(graph, SOURCE, horizon=horizon)
        for vid, duration in expected.items():
            if vid == SOURCE:
                continue  # source replicas trivially carry start = own time
            assert tgb_fastest_duration(res, vid) == duration, vid

    def test_goffish_matches_reference(self, graph, horizon):
        res = GoffishEngine(graph, GoffishFAST(SOURCE), horizon=horizon).run()
        expected = temporal_fast(graph, SOURCE, horizon=horizon)
        for vid, duration in expected.items():
            if vid == SOURCE:
                continue
            value = res.values.get(vid)
            got = None if value is None or value[1] >= INF else value[1]
            assert got == duration, vid


class TestLD:
    def test_icm_matches_reference(self, graph, horizon):
        deadline = horizon - 1
        result = IntervalCentricEngine(
            graph.reversed(), TemporalLD(TARGET, deadline)
        ).run()
        expected = temporal_ld(graph, TARGET, deadline, horizon=horizon)
        for vid, departure in expected.items():
            if vid == TARGET:
                continue  # the target's own LD is definitional
            assert latest_departure(result.states[vid]) == departure, vid

    def test_tgb_matches_reference(self, graph, horizon):
        deadline = horizon - 1
        transformed = build_transformed_graph(graph, horizon=horizon).reversed()
        res = run_tgb(graph, TgbLD(TARGET, deadline), transformed=transformed,
                      horizon=horizon)
        expected = temporal_ld(graph, TARGET, deadline, horizon=horizon)
        for vid, departure in expected.items():
            if vid == TARGET:
                continue
            assert tgb_latest_departure(res, vid, deadline) == departure, vid

    def test_goffish_matches_reference(self, graph, horizon):
        deadline = horizon - 1
        res = GoffishEngine(
            graph.reversed(), GoffishLD(TARGET, deadline),
            horizon=horizon, direction=-1,
        ).run()
        expected = temporal_ld(graph, TARGET, deadline, horizon=horizon)
        for vid, departure in expected.items():
            if vid == TARGET:
                continue
            value = res.values.get(vid, -1)
            got = None if value is None or value < 0 else value
            assert got == departure, vid


class TestTMST:
    def test_icm_arrivals_match_eat(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalTMST(SOURCE)).run()
        expected = temporal_eat(graph, SOURCE, horizon=horizon)
        tree = tmst_tree(result.states, SOURCE)
        for vid, arrival in expected.items():
            if vid == SOURCE:
                continue
            if arrival is None:
                assert vid not in tree or tree[vid][0] >= horizon, vid
            else:
                assert tree[vid][0] == arrival, vid

    def test_icm_tree_edges_are_valid(self, graph, horizon):
        """Each tree edge must correspond to a real, temporally valid hop."""
        result = IntervalCentricEngine(graph, TemporalTMST(SOURCE)).run()
        arrivals = temporal_eat(graph, SOURCE, horizon=horizon)
        tree = tmst_tree(result.states, SOURCE)
        for child, (arrival, parent) in tree.items():
            if arrival >= horizon:
                continue
            parent_arrival = 0 if parent == SOURCE else arrivals[parent]
            assert parent_arrival is not None
            # Some edge parent→child departs at arrival-1 (travel time 1)
            # at or after the parent's own arrival.
            dep = arrival - 1
            assert dep >= parent_arrival
            assert any(
                e.dst == child and e.lifespan.contains_point(dep)
                for e in graph.out_edges(parent)
            ), (child, parent)

    def test_tgb_arrivals_match_eat(self, graph, horizon):
        res = run_tgb(graph, TgbTMST(SOURCE), horizon=horizon)
        expected = temporal_eat(graph, SOURCE, horizon=horizon)
        for vid, arrival in expected.items():
            if vid == SOURCE:
                continue
            entries = [v for _, v in res.replicas_of(vid) if v is not None and v[0] < INF]
            got = min(entries, default=None)
            if arrival is None:
                assert got is None, vid
            else:
                assert got[0] == arrival, vid

    def test_goffish_arrivals_match_eat(self, graph, horizon):
        res = GoffishEngine(graph, GoffishTMST(SOURCE), horizon=horizon).run()
        expected = temporal_eat(graph, SOURCE, horizon=horizon)
        for vid, arrival in expected.items():
            if vid == SOURCE:
                continue
            value = res.values.get(vid)
            got = None if value is None or value[0] >= INF else value[0]
            if arrival is None:
                assert got is None, vid
            else:
                assert got == arrival, vid
