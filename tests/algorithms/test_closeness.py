"""Tests for temporal closeness centrality."""

import pytest

from repro.algorithms.reference import temporal_eat
from repro.algorithms.td.closeness import most_central, temporal_closeness
from repro.datasets import transit_graph


class TestTransitCloseness:
    def test_matches_manual_computation(self):
        g = transit_graph()
        closeness, metrics = temporal_closeness(g, sources=["A"])
        # From A (start 0): B at 4, C at 2, D at 3, E at 6; F unreachable.
        expected = 1 / 4 + 1 / 2 + 1 / 3 + 1 / 6
        assert closeness["A"] == pytest.approx(expected)
        assert metrics.compute_calls > 0

    def test_all_sources_default(self):
        g = transit_graph()
        closeness, _ = temporal_closeness(g)
        assert set(closeness) == set("ABCDEF")
        # F has no outgoing edges: closeness 0.
        assert closeness["F"] == 0.0
        # A reaches the most vertices earliest.
        assert most_central(closeness, 1)[0][0] == "A"

    def test_consistent_with_reference_eat(self, ):
        g = transit_graph()
        closeness, _ = temporal_closeness(g, sources=["B"])
        # The grid reference needs a horizon past the last arrival (the
        # final departures at t=8 land at t=9 == time_horizon()).
        arrivals = temporal_eat(g, "B", horizon=g.time_horizon() + 2)
        start = g.vertex("B").lifespan.start
        expected = sum(
            1.0 / (a - start)
            for vid, a in arrivals.items()
            if vid != "B" and a is not None and a > start
        )
        assert closeness["B"] == pytest.approx(expected)

    def test_most_central_deterministic_ties(self):
        ranked = most_central({"x": 1.0, "a": 1.0, "b": 0.5}, k=2)
        assert ranked == [("a", 1.0), ("x", 1.0)]
