"""Tests for temporal SSSP journey reconstruction."""

import pytest

from repro.algorithms.reference import temporal_sssp_grid
from repro.algorithms.td.journeys import (
    TemporalSSSPJourneys,
    journey_cost,
    reconstruct_journey,
)
from repro.algorithms.td.sssp import INFINITY, TemporalSSSP
from repro.core.engine import IntervalCentricEngine
from repro.datasets import transit_graph


@pytest.fixture(scope="module")
def transit():
    graph = transit_graph()
    result = IntervalCentricEngine(graph, TemporalSSSPJourneys("A")).run()
    return graph, result


class TestCostsUnchanged:
    def test_costs_match_plain_sssp(self, transit, graph, horizon):
        """Carrying provenance must not change the optimal costs — checked
        on both the transit example and random graphs."""
        t_graph, t_result = transit
        plain = IntervalCentricEngine(t_graph, TemporalSSSP("A")).run()
        for vid in "ABCDEF":
            for t in (0, 4, 6, 9):
                assert t_result.value_at(vid, t)[0] == plain.value_at(vid, t)

        result = IntervalCentricEngine(graph, TemporalSSSPJourneys("v0")).run()
        grid = temporal_sssp_grid(graph, "v0", horizon=horizon)
        for vid, row in grid.items():
            for t in range(horizon):
                assert result.value_at(vid, t)[0] == row[t], (vid, t)


class TestTransitItineraries:
    def test_paper_journey_to_E(self, transit):
        """The paper's walk-through: A departs 5 → B (cost 3), B departs 8
        → E arriving 9, total cost 5."""
        graph, result = transit
        legs = reconstruct_journey(result, graph, "A", "E", at=10)
        assert [str(l) for l in legs] == [
            "A --dep 5, cost 3--> B (arr 6)",
            "B --dep 8, cost 2--> E (arr 9)",
        ]
        assert journey_cost(legs) == 5

    def test_earlier_arrival_uses_other_route(self, transit):
        """Arriving by 7 forces the costlier A→C→E route (cost 7)."""
        graph, result = transit
        legs = reconstruct_journey(result, graph, "A", "E", at=7)
        assert [(l.src, l.dst) for l in legs] == [("A", "C"), ("C", "E")]
        assert journey_cost(legs) == 7

    def test_unreachable(self, transit):
        graph, result = transit
        assert reconstruct_journey(result, graph, "A", "F", at=9) is None
        assert reconstruct_journey(result, graph, "A", "E", at=4) is None

    def test_journey_to_source_is_empty(self, transit):
        graph, result = transit
        assert reconstruct_journey(result, graph, "A", "A", at=5) == []


class TestJourneyValidity:
    def test_random_graph_journeys_are_time_respecting(self, graph, horizon):
        """Every reconstructed journey must be temporally consistent and
        cost exactly what the state claims."""
        result = IntervalCentricEngine(graph, TemporalSSSPJourneys("v0")).run()
        for vid in graph.vertex_ids():
            at = horizon - 1
            state_cost = result.value_at(vid, at)[0]
            legs = reconstruct_journey(result, graph, "v0", vid, at=at)
            if state_cost >= INFINITY:
                assert legs is None or vid == "v0"
                continue
            assert legs is not None, vid
            assert journey_cost(legs) == state_cost or vid == "v0"
            # Time-respecting: departures never precede arrivals.
            clock = 0
            for leg in legs:
                assert leg.departure >= clock
                assert leg.arrival == leg.departure + 1  # tt = 1 in conftest
                clock = leg.arrival
                edge_alive = any(
                    e.dst == leg.dst and e.lifespan.contains_point(leg.departure)
                    for e in graph.out_edges(leg.src)
                )
                assert edge_alive
