"""Correctness of the clustering algorithms (LCC, TC) on all platforms.

Both use *concurrent* time-respecting neighbourhoods: a triangle (or an
edge among a vertex's neighbours) counts at time-point ``t`` only when all
participating edges are alive at ``t`` — so the per-snapshot reference at
every ``t`` is the ground truth for all three platforms.
"""

import pytest

from repro.algorithms.reference import snapshot_lcc, snapshot_tc
from repro.algorithms.td.lcc import GoffishLCC, SnapshotLCC, TemporalLCC, lcc_value
from repro.algorithms.td.tc import GoffishTC, SnapshotTC, TemporalTC, global_triangles, tc_count
from repro.baselines.goffish import GoffishEngine
from repro.baselines.tgb import run_tgb
from repro.core.engine import IntervalCentricEngine
from repro.graph.builder import TemporalGraphBuilder
from repro.graph.snapshots import snapshot_at
from repro.graph.transform import build_snapshot_replica_graph


def triangle_graph():
    """A triangle whose edges are alive over staggered intervals, plus a
    spoke: the triangle is concurrent only during [2, 4)."""
    b = TemporalGraphBuilder()
    for vid in "ABCD":
        b.add_vertex(vid, 0, 6)
    b.add_edge("A", "B", 0, 4, eid="ab")
    b.add_edge("B", "C", 2, 6, eid="bc")
    b.add_edge("C", "A", 1, 5, eid="ca")
    b.add_edge("A", "D", 0, 6, eid="ad")
    return b.build()


class TestTriangleGraphTC:
    def test_icm_counts_concurrent_triangle_only(self):
        g = triangle_graph()
        result = IntervalCentricEngine(g, TemporalTC()).run()
        # The cycle A→B→C→A is concurrent exactly during [2,4); each vertex
        # closes it once per rotation.
        for t in range(6):
            total = global_triangles(result.states, t)
            assert total == (1 if 2 <= t < 4 else 0), t

    def test_icm_matches_reference_pointwise(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalTC()).run()
        for t in range(horizon):
            expected = snapshot_tc(snapshot_at(graph, t))
            for vid, count in expected.items():
                assert tc_count(result.value_at(vid, t)) == count, (vid, t)

    def test_tgb_matches_reference(self, graph, horizon):
        replica = build_snapshot_replica_graph(graph, horizon=horizon)
        res = run_tgb(graph, SnapshotTC(), transformed=replica, horizon=horizon)
        for t in range(horizon):
            expected = snapshot_tc(snapshot_at(graph, t))
            for vid, count in expected.items():
                value = res.replica_values.get((vid, t))
                assert tc_count(value) == count, (vid, t)

    def test_goffish_matches_reference(self, graph, horizon):
        res = GoffishEngine(graph, GoffishTC(), horizon=horizon).run()
        for t in range(horizon):
            expected = snapshot_tc(snapshot_at(graph, t))
            for vid, count in expected.items():
                value = res.observed.get(t, {}).get(vid)
                assert tc_count(value) == count, (vid, t)


class TestLCC:
    def test_triangle_graph_lcc(self):
        g = triangle_graph()
        result = IntervalCentricEngine(g, TemporalLCC()).run()
        # At t=2: A's neighbours {B, D} (edges ab, ad) and edge B→D absent;
        # but A also participates via ca… LCC(A) counts edges among
        # N(A)={B,D}: none → 0.  C's neighbour set {A} → degree 1 → 0.
        for t in range(6):
            expected = snapshot_lcc(snapshot_at(g, t))
            for vid in "ABCD":
                assert lcc_value(result.value_at(vid, t)) == pytest.approx(
                    expected[vid]
                ), (vid, t)

    def test_icm_matches_reference_pointwise(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalLCC()).run()
        for t in range(horizon):
            expected = snapshot_lcc(snapshot_at(graph, t))
            for vid, value in expected.items():
                assert lcc_value(result.value_at(vid, t)) == pytest.approx(value), (vid, t)

    def test_tgb_matches_reference(self, graph, horizon):
        replica = build_snapshot_replica_graph(graph, horizon=horizon)
        res = run_tgb(graph, SnapshotLCC(), transformed=replica, horizon=horizon)
        for t in range(horizon):
            expected = snapshot_lcc(snapshot_at(graph, t))
            for vid, value in expected.items():
                got = res.replica_values.get((vid, t))
                assert lcc_value(got) == pytest.approx(value), (vid, t)

    def test_goffish_matches_reference(self, graph, horizon):
        res = GoffishEngine(graph, GoffishLCC(), horizon=horizon).run()
        for t in range(horizon):
            expected = snapshot_lcc(snapshot_at(graph, t))
            for vid, value in expected.items():
                got = res.observed.get(t, {}).get(vid)
                assert lcc_value(got) == pytest.approx(value), (vid, t)
