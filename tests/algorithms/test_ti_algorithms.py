"""Correctness of the TI algorithms on all three platforms.

For each algorithm, the one interval-centric run must agree *pointwise*
with the brute-force per-snapshot reference at every time-point — the
"snapshot-reducible" contract — and so must MSB and Chlonos.
"""

import pytest

from repro.algorithms.reference import (
    snapshot_bfs,
    snapshot_pagerank,
    snapshot_scc,
    snapshot_wcc,
)
from repro.algorithms.ti.bfs import SnapshotBFS, TemporalBFS, UNREACHED
from repro.algorithms.ti.pagerank import SnapshotPageRank, TemporalPageRank
from repro.algorithms.ti.scc import run_chlonos_scc, run_icm_scc, run_snapshot_scc
from repro.algorithms.ti.wcc import SnapshotWCC, TemporalWCC, make_undirected
from repro.baselines.chlonos import run_chlonos
from repro.baselines.msb import run_msb
from repro.core.engine import IntervalCentricEngine
from repro.graph.snapshots import snapshot_at

SOURCE = "v0"


class TestBFS:
    def test_icm_matches_reference_pointwise(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalBFS(SOURCE)).run()
        for t in range(horizon):
            expected = snapshot_bfs(snapshot_at(graph, t), SOURCE)
            for vid, dist in expected.items():
                assert result.value_at(vid, t) == dist, (vid, t)

    def test_msb_matches_reference(self, graph, horizon):
        res = run_msb(graph, lambda t: SnapshotBFS(SOURCE), horizon=horizon)
        for t in range(horizon):
            expected = snapshot_bfs(snapshot_at(graph, t), SOURCE)
            assert res.values[t] == expected

    def test_chlonos_matches_reference(self, graph, horizon):
        res = run_chlonos(graph, lambda t: SnapshotBFS(SOURCE), horizon=horizon)
        for t in range(horizon):
            expected = snapshot_bfs(snapshot_at(graph, t), SOURCE)
            assert res.values[t] == expected

    def test_chlonos_batched_matches_unbatched(self, graph, horizon):
        full = run_chlonos(graph, lambda t: SnapshotBFS(SOURCE), horizon=horizon)
        batched = run_chlonos(graph, lambda t: SnapshotBFS(SOURCE),
                              horizon=horizon, batch_size=3)
        assert full.values == batched.values
        assert batched.num_batches == 3


class TestWCC:
    def test_icm_matches_reference_pointwise(self, graph, horizon):
        undirected = make_undirected(graph)
        result = IntervalCentricEngine(undirected, TemporalWCC()).run()
        for t in range(horizon):
            expected = snapshot_wcc(snapshot_at(graph, t))
            for vid, label in expected.items():
                assert result.value_at(vid, t) == label, (vid, t)

    def test_msb_matches_reference(self, graph, horizon):
        undirected = make_undirected(graph)
        res = run_msb(undirected, lambda t: SnapshotWCC(), horizon=horizon)
        for t in range(horizon):
            expected = snapshot_wcc(snapshot_at(graph, t))
            assert res.values[t] == expected

    def test_chlonos_matches_reference(self, graph, horizon):
        undirected = make_undirected(graph)
        res = run_chlonos(undirected, lambda t: SnapshotWCC(), horizon=horizon,
                          batch_size=4)
        for t in range(horizon):
            expected = snapshot_wcc(snapshot_at(graph, t))
            assert res.values[t] == expected


class TestPageRank:
    def test_icm_matches_reference_pointwise(self, graph, horizon):
        result = IntervalCentricEngine(graph, TemporalPageRank(graph)).run()
        for t in range(horizon):
            expected = snapshot_pagerank(snapshot_at(graph, t))
            for vid, rank in expected.items():
                assert result.value_at(vid, t) == pytest.approx(rank), (vid, t)

    def test_msb_matches_reference(self, graph, horizon):
        res = run_msb(graph, lambda t: SnapshotPageRank(), horizon=horizon)
        for t in range(horizon):
            expected = snapshot_pagerank(snapshot_at(graph, t))
            for vid, rank in expected.items():
                assert res.values[t][vid] == pytest.approx(rank)

    def test_chlonos_matches_reference(self, graph, horizon):
        res = run_chlonos(graph, lambda t: SnapshotPageRank(), horizon=horizon,
                          batch_size=5)
        for t in range(horizon):
            expected = snapshot_pagerank(snapshot_at(graph, t))
            for vid, rank in expected.items():
                assert res.values[t][vid] == pytest.approx(rank)

    def test_ranks_are_probabilities_when_no_danglers(self):
        """On a cycle (no dangling mass), ranks sum to 1 per snapshot."""
        from repro.graph.builder import TemporalGraphBuilder

        b = TemporalGraphBuilder()
        n = 6
        for i in range(n):
            b.add_vertex(f"v{i}", 0, 4)
        for i in range(n):
            b.add_edge(f"v{i}", f"v{(i + 1) % n}", 0, 4)
        g = b.build()
        result = IntervalCentricEngine(g, TemporalPageRank(g)).run()
        total = sum(result.value_at(f"v{i}", 2) for i in range(n))
        assert total == pytest.approx(1.0)


class TestSCC:
    def test_icm_matches_reference_pointwise(self, graph, horizon):
        res = run_icm_scc(graph)
        for t in range(horizon):
            expected = snapshot_scc(snapshot_at(graph, t))
            for vid, label in expected.items():
                assert res.component_at(vid, t) == label, (vid, t)

    def test_msb_matches_reference(self, graph, horizon):
        values, _ = run_snapshot_scc(graph, horizon=horizon)
        for t in range(horizon):
            expected = snapshot_scc(snapshot_at(graph, t))
            assert values[t] == expected

    def test_chlonos_matches_reference(self, graph, horizon):
        values, _ = run_chlonos_scc(graph, horizon=horizon, batch_size=4)
        for t in range(horizon):
            expected = snapshot_scc(snapshot_at(graph, t))
            assert values[t] == expected
