"""Shared fixtures: small deterministic random temporal graphs."""

import random

import pytest

from repro.graph.builder import TemporalGraphBuilder

HORIZON = 8


def random_temporal_graph(seed: int, n_vertices: int = 10, n_edges: int = 28,
                          horizon: int = HORIZON):
    """A small random temporal graph with TD edge properties."""
    rng = random.Random(seed)
    b = TemporalGraphBuilder()
    for i in range(n_vertices):
        b.add_vertex(f"v{i}", 0, horizon)
    for _ in range(n_edges):
        src = rng.randrange(n_vertices)
        dst = rng.randrange(n_vertices)
        if dst == src:
            dst = (dst + 1) % n_vertices
        start = rng.randrange(horizon)
        end = rng.randint(start + 1, horizon)
        # One or two property regimes within the lifespan.
        if end - start >= 3 and rng.random() < 0.5:
            mid = rng.randint(start + 1, end - 1)
            cost_spec = [(start, mid, rng.randint(1, 5)), (mid, end, rng.randint(1, 5))]
        else:
            cost_spec = [(start, end, rng.randint(1, 5))]
        b.add_edge(f"v{src}", f"v{dst}", start, end,
                   props={"travel-cost": cost_spec, "travel-time": 1})
    return b.build()


@pytest.fixture(params=[1, 2, 3, 4, 5])
def graph(request):
    return random_temporal_graph(seed=request.param)


@pytest.fixture
def horizon():
    return HORIZON
