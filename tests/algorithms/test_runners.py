"""Unit tests for the (algorithm × platform) runner layer."""

import pytest

from repro.algorithms.runners import (
    ALL_ALGORITHMS,
    TD_ALGORITHMS,
    TI_ALGORITHMS,
    default_source,
    default_target,
    platforms_for,
    run_algorithm,
)
from repro.datasets import transit_graph
from repro.graph.builder import TemporalGraphBuilder


class TestDefaults:
    def test_default_source_is_max_out_degree(self):
        g = transit_graph()
        assert default_source(g) == "A"  # 3 out-edges

    def test_default_target_is_max_in_degree(self):
        g = transit_graph()
        # C and E both have 2 in-edges; ties break towards the larger id.
        assert default_target(g) == "E"

    def test_deterministic_on_ties(self):
        b = TemporalGraphBuilder()
        b.add_vertices(["x", "y", "z"])
        g = b.build()
        assert default_source(g) == default_source(g) == "z"


class TestMatrixShape:
    def test_algorithm_lists_cover_paper(self):
        assert set(TI_ALGORITHMS) == {"BFS", "WCC", "SCC", "PR"}
        assert set(TD_ALGORITHMS) == {
            "SSSP", "EAT", "FAST", "LD", "TMST", "RH", "LCC", "TC"}
        assert len(ALL_ALGORITHMS) == 12

    def test_platforms_for(self):
        assert platforms_for("PR") == ("GRAPHITE", "MSB", "Chlonos")
        assert platforms_for("LCC") == ("GRAPHITE", "TGB", "GoFFish")


class TestParameterPlumbing:
    def test_explicit_source_used(self):
        g = transit_graph()
        outcome = run_algorithm("SSSP", "GRAPHITE", g, source="B")
        # From B only C and E are reachable.
        from repro.algorithms.td.sssp import INFINITY

        assert outcome.result.value_at("E", 9) < INFINITY
        assert outcome.result.value_at("D", 9) >= INFINITY

    def test_icm_options_forwarded(self):
        g = transit_graph()
        baseline = run_algorithm("SSSP", "GRAPHITE", g)
        no_combiner = run_algorithm(
            "SSSP", "GRAPHITE", g,
            icm_options={"enable_warp_combiner": False,
                         "enable_receiver_combiner": False},
        )
        assert no_combiner.metrics.combiner_reductions == 0
        assert baseline.metrics.combiner_reductions >= 0
        for vid in "ABCDEF":
            assert (baseline.result.value_at(vid, 9)
                    == no_combiner.result.value_at(vid, 9))

    def test_deadline_for_ld(self):
        g = transit_graph()
        tight = run_algorithm("LD", "GRAPHITE", g, target="E", deadline=6)
        loose = run_algorithm("LD", "GRAPHITE", g, target="E", deadline=10)
        from repro.algorithms.td.ld import latest_departure

        # With deadline 6 only the A→C→E corridor works (depart A by 1).
        assert latest_departure(tight.result.states["A"]) == 1
        assert latest_departure(loose.result.states["A"]) == 5

    def test_metrics_labelled(self):
        g = transit_graph()
        outcome = run_algorithm("RH", "TGB", g, graph_name="transit")
        assert outcome.metrics.platform == "TGB"
        assert outcome.metrics.graph == "transit"
        assert outcome.algorithm == "RH"
