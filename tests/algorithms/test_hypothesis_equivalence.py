"""Property-based equivalence: ICM vs brute-force references on random
temporal graphs (stronger than the fixed-seed suites)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.reference import (
    INF,
    snapshot_bfs,
    snapshot_wcc,
    temporal_eat,
    temporal_reach_grid,
    temporal_sssp_grid,
)
from repro.algorithms.td.eat import TemporalEAT, earliest_arrival
from repro.algorithms.td.reach import TemporalReachability
from repro.algorithms.td.sssp import TemporalSSSP
from repro.algorithms.ti.bfs import TemporalBFS
from repro.algorithms.ti.wcc import TemporalWCC, make_undirected
from repro.core.engine import IntervalCentricEngine
from repro.graph.builder import TemporalGraphBuilder
from repro.graph.snapshots import snapshot_at

HORIZON = 8


@st.composite
def temporal_graph(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    b = TemporalGraphBuilder()
    for i in range(n):
        b.add_vertex(f"v{i}", 0, HORIZON)
    for _ in range(draw(st.integers(min_value=1, max_value=16))):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if dst == src:
            dst = (dst + 1) % n
        start = draw(st.integers(min_value=0, max_value=HORIZON - 1))
        end = draw(st.integers(min_value=start + 1, max_value=HORIZON))
        cost = draw(st.integers(min_value=1, max_value=4))
        # Occasionally split the cost regime mid-lifespan.
        if end - start >= 2 and draw(st.booleans()):
            mid = draw(st.integers(min_value=start + 1, max_value=end - 1))
            cost_spec = [(start, mid, cost), (mid, end, draw(st.integers(min_value=1, max_value=4)))]
        else:
            cost_spec = [(start, end, cost)]
        b.add_edge(f"v{src}", f"v{dst}", start, end,
                   props={"travel-cost": cost_spec, "travel-time": 1})
    return b.build()


@given(temporal_graph())
@settings(max_examples=80, deadline=None)
def test_sssp_matches_grid(graph):
    result = IntervalCentricEngine(graph, TemporalSSSP("v0")).run()
    grid = temporal_sssp_grid(graph, "v0", horizon=HORIZON)
    for vid, row in grid.items():
        for t in range(HORIZON):
            assert result.value_at(vid, t) == row[t], (vid, t)


@given(temporal_graph())
@settings(max_examples=80, deadline=None)
def test_eat_matches_reference(graph):
    result = IntervalCentricEngine(graph, TemporalEAT("v0")).run()
    expected = temporal_eat(graph, "v0", horizon=HORIZON)
    for vid, arrival in expected.items():
        got = earliest_arrival(result.states[vid])
        if arrival is None:
            assert got is None or got >= HORIZON, vid
        else:
            assert got == arrival, vid


@given(temporal_graph())
@settings(max_examples=80, deadline=None)
def test_reachability_matches_grid_pointwise(graph):
    result = IntervalCentricEngine(graph, TemporalReachability("v0")).run()
    grid = temporal_reach_grid(graph, "v0", horizon=HORIZON)
    for vid, row in grid.items():
        for t in range(HORIZON):
            assert bool(result.value_at(vid, t)) == row[t], (vid, t)


@given(temporal_graph())
@settings(max_examples=60, deadline=None)
def test_bfs_matches_per_snapshot(graph):
    result = IntervalCentricEngine(graph, TemporalBFS("v0")).run()
    for t in range(HORIZON):
        expected = snapshot_bfs(snapshot_at(graph, t), "v0")
        for vid, dist in expected.items():
            assert result.value_at(vid, t) == dist, (vid, t)


@given(temporal_graph())
@settings(max_examples=60, deadline=None)
def test_wcc_matches_per_snapshot(graph):
    undirected = make_undirected(graph)
    result = IntervalCentricEngine(undirected, TemporalWCC()).run()
    for t in range(HORIZON):
        expected = snapshot_wcc(snapshot_at(graph, t))
        for vid, label in expected.items():
            assert result.value_at(vid, t) == label, (vid, t)
