"""Tests for the timeline algebra."""

import pytest

from repro.core.interval import FOREVER, Interval
from repro.core.state import PartitionedState
from repro.query.timeline import Timeline, aggregate, align


def iv(a, b):
    return Interval(a, b)


class TestConstruction:
    def test_sorted_and_validated(self):
        tl = Timeline([(iv(5, 8), "b"), (iv(0, 3), "a")])
        assert tl.entries() == [(iv(0, 3), "a"), (iv(5, 8), "b")]

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Timeline([(iv(0, 5), 1), (iv(3, 8), 2)])

    def test_from_state(self):
        state = PartitionedState(iv(0, 10), 0)
        state.set(iv(4, 6), 1)
        tl = Timeline.from_state(state)
        assert tl.value_at(5) == 1
        assert tl.is_covering()

    def test_constant(self):
        tl = Timeline.constant(iv(2, 9), 7)
        assert tl.value_at(2) == 7
        assert tl.value_at(9) is None


class TestQueries:
    TL = Timeline([(iv(0, 3), 1), (iv(5, 8), 2), (iv(8, 12), 1)])

    def test_value_at_with_gap(self):
        assert self.TL.value_at(1) == 1
        assert self.TL.value_at(4, default="gap") == "gap"
        assert self.TL.value_at(8) == 1

    def test_span(self):
        assert self.TL.span() == iv(0, 12)
        assert Timeline().span() is None

    def test_is_covering(self):
        assert not self.TL.is_covering()
        assert Timeline([(iv(0, 3), 1), (iv(3, 6), 2)]).is_covering()

    def test_when(self):
        assert self.TL.when(lambda v: v == 1) == [iv(0, 3), iv(8, 12)]
        assert self.TL.when(lambda v: v > 5) == []


class TestUnaryOps:
    def test_map(self):
        tl = Timeline([(iv(0, 2), 1), (iv(2, 4), 2)]).map(lambda v: v * 10)
        assert tl.entries() == [(iv(0, 2), 10), (iv(2, 4), 20)]

    def test_filter(self):
        tl = Timeline([(iv(0, 2), 1), (iv(2, 4), 2)]).filter(lambda v: v > 1)
        assert tl.entries() == [(iv(2, 4), 2)]

    def test_clip(self):
        tl = Timeline([(iv(0, 5), "a"), (iv(5, 10), "b")]).clip(iv(3, 7))
        assert tl.entries() == [(iv(3, 5), "a"), (iv(5, 7), "b")]

    def test_coalesced(self):
        tl = Timeline([(iv(0, 2), 1), (iv(2, 5), 1), (iv(5, 7), 2)]).coalesced()
        assert tl.entries() == [(iv(0, 5), 1), (iv(5, 7), 2)]

    def test_coalesced_respects_gaps(self):
        tl = Timeline([(iv(0, 2), 1), (iv(3, 5), 1)]).coalesced()
        assert len(tl) == 2


class TestBinaryOps:
    def test_join(self):
        a = Timeline([(iv(0, 6), 2)])
        b = Timeline([(iv(3, 9), 10)])
        joined = a.join(b, lambda x, y: x + y)
        assert joined.entries() == [(iv(3, 6), 12)]

    def test_join_empty_overlap(self):
        a = Timeline([(iv(0, 3), 1)])
        b = Timeline([(iv(5, 9), 2)])
        assert len(a.join(b, lambda x, y: x + y)) == 0


class TestAlignAggregate:
    def test_align(self):
        a = Timeline([(iv(0, 4), 1)])
        b = Timeline([(iv(2, 6), 10)])
        assert align([a, b]) == [
            (iv(0, 2), [1]),
            (iv(2, 4), [1, 10]),
            (iv(4, 6), [10]),
        ]

    def test_aggregate_sum(self):
        a = Timeline([(iv(0, 4), 1)])
        b = Timeline([(iv(2, 6), 10)])
        total = aggregate([a, b], sum)
        assert total.entries() == [(iv(0, 2), 1), (iv(2, 4), 11), (iv(4, 6), 10)]

    def test_aggregate_len_counts_presence(self):
        a = Timeline([(iv(0, 4), "x")])
        b = Timeline([(iv(0, 4), "y")])
        c = Timeline([(iv(2, 8), "z")])
        counts = aggregate([a, b, c], len)
        assert counts.entries() == [(iv(0, 2), 2), (iv(2, 4), 3), (iv(4, 8), 1)]

    def test_unbounded_entries(self):
        a = Timeline([(Interval(3), 5)])
        b = Timeline([(iv(0, 10), 1)])
        total = aggregate([a, b], sum)
        assert total.value_at(4) == 6
        assert total.value_at(10**12) == 5
