"""Tests for subgraph operators and graph/result analytics."""

import pytest

from repro.algorithms.td.sssp import INFINITY, TemporalSSSP
from repro.algorithms.ti.pagerank import TemporalPageRank
from repro.core.engine import IntervalCentricEngine
from repro.core.interval import Interval
from repro.datasets import transit_graph
from repro.query import (
    between,
    degree_timeline,
    edge_count_timeline,
    edge_subgraph,
    property_timeline,
    state_timeline,
    temporal_slice,
    top_k_at,
    total_over_time,
    vertex_count_timeline,
    vertex_subgraph,
    when_stable,
)
from repro.graph.builder import TemporalGraphBuilder


def evolving():
    b = TemporalGraphBuilder()
    b.add_vertex("A", 0, 10)
    b.add_vertex("B", 0, 10)
    b.add_vertex("C", 3, 8)
    b.add_edge("A", "B", 0, 6, eid="ab", props={"w": [(0, 3, 1), (3, 6, 2)]})
    b.add_edge("B", "C", 4, 8, eid="bc")
    b.add_edge("A", "C", 5, 7, eid="ac")
    return b.build()


class TestTemporalSlice:
    def test_clips_lifespans_and_properties(self):
        g = temporal_slice(evolving(), Interval(2, 6))
        assert g.vertex("A").lifespan == Interval(2, 6)
        assert g.vertex("C").lifespan == Interval(3, 6)
        assert g.edge("ab").lifespan == Interval(2, 6)
        tl = g.edge("ab").properties.timeline("w").entries()
        assert tl == [(Interval(2, 3), 1), (Interval(3, 6), 2)]

    def test_drops_entities_outside_window(self):
        g = temporal_slice(evolving(), Interval(0, 3))
        assert not g.has_vertex("C")
        assert g.num_edges == 1  # only ab overlaps [0,3)

    def test_result_is_valid(self):
        temporal_slice(evolving(), Interval(4, 7)).validate()


class TestSubgraphs:
    def test_vertex_subgraph(self):
        g = vertex_subgraph(evolving(), lambda v: v.vid != "C")
        assert sorted(g.vertex_ids()) == ["A", "B"]
        assert [e.eid for e in g.edges()] == ["ab"]

    def test_edge_subgraph(self):
        g = edge_subgraph(evolving(), lambda e: e.lifespan.length >= 4)
        assert {e.eid for e in g.edges()} == {"ab", "bc"}
        assert g.num_vertices == 3

    def test_between(self):
        g = between(evolving(), ["A", "C"])
        assert [e.eid for e in g.edges()] == ["ac"]

    def test_edge_subgraph_does_not_alias_properties(self):
        # Regression: the subgraph used to share PropertyMap objects with
        # the source graph, so mutating one corrupted the other.
        src = evolving()
        sub = edge_subgraph(src, lambda e: True)
        sub.edge("ab").properties.add("w", Interval(6, 9), 7)
        assert src.edge("ab").properties.timeline("w").value_at(6) is None
        sub.vertex("A").properties.add("tag", Interval(0, 5), "x")
        assert "tag" not in list(src.vertex("A").properties)

    def test_between_does_not_alias_properties(self):
        src = evolving()
        sub = between(src, ["A", "B"])
        sub.edge("ab").properties.add("w", Interval(6, 9), 7)
        assert src.edge("ab").properties.timeline("w").value_at(6) is None

    def test_subgraph_properties_preserved(self):
        sub = edge_subgraph(evolving(), lambda e: e.eid == "ab")
        assert sub.edge("ab").properties.timeline("w").entries() == \
               evolving().edge("ab").properties.timeline("w").entries()

    def test_between_vertex_order_is_canonical(self):
        # Vertex enumeration order feeds engine runs; it must come from
        # sorted ids, not from set iteration order.
        g = between(evolving(), ["C", "A", "B"])
        assert list(g.vertex_ids()) == ["A", "B", "C"]

    def test_between_order_stable_across_hash_seeds(self):
        """The induced subgraph enumerates identically under any hash salt."""
        import os
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent(
            """
            from repro.graph.builder import TemporalGraphBuilder
            from repro.query import between

            b = TemporalGraphBuilder()
            ids = [f"n{i}" for i in range(40)]
            for vid in ids:
                b.add_vertex(vid, 0, 4)
            for i in range(39):
                b.add_edge(ids[i], ids[i + 1], 0, 4)
            g = between(b.build(), ids[::-1])
            print(list(g.vertex_ids()))
            """
        )
        outputs = []
        for hash_seed in ("0", "777"):
            src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), os.path.abspath(src)) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert "n0" in outputs[0]


class TestGraphAnalytics:
    def test_degree_timeline(self):
        tl = degree_timeline(evolving(), "A")
        assert tl.value_at(0) == 1   # ab only
        assert tl.value_at(5) == 2   # ab + ac
        assert tl.value_at(8) == 0

    def test_in_degree_timeline(self):
        tl = degree_timeline(evolving(), "C", direction="in")
        assert tl.value_at(4) == 1
        assert tl.value_at(5) == 2
        with pytest.raises(ValueError):
            degree_timeline(evolving(), "C", direction="sideways")

    def test_vertex_count_timeline(self):
        tl = vertex_count_timeline(evolving())
        assert tl.value_at(0) == 2
        assert tl.value_at(4) == 3
        assert tl.value_at(9) == 2

    def test_edge_count_timeline(self):
        tl = edge_count_timeline(evolving())
        assert tl.value_at(0) == 1
        assert tl.value_at(5) == 3
        assert tl.value_at(7) == 1

    def test_property_timeline(self):
        tl = property_timeline(evolving(), "ab", "w")
        assert tl.value_at(1) == 1
        assert tl.value_at(4) == 2


class TestResultAnalytics:
    @pytest.fixture(scope="class")
    def sssp(self):
        g = transit_graph()
        return IntervalCentricEngine(g, TemporalSSSP("A")).run()

    def test_state_timeline(self, sssp):
        tl = state_timeline(sssp, "B")
        assert tl.value_at(4) == 4
        assert tl.value_at(8) == 3

    def test_when_stable(self, sssp):
        intervals = when_stable(sssp, "E")
        assert intervals == [Interval(0, 6), Interval(6, 9), Interval(9, Interval(0).end)]

    def test_top_k_cheapest_at(self, sssp):
        cheapest = top_k_at(sssp, 9, k=3, reverse=False)
        assert cheapest[0] == ("A", 0)
        assert cheapest[1] == ("D", 2)
        assert cheapest[2][1] == 3  # B or C, both cost 3 at t=9

    def test_total_over_time_counts_reachable(self):
        g = transit_graph()
        result = IntervalCentricEngine(g, TemporalSSSP("A")).run()
        reachable = total_over_time(
            result, lambda values: sum(1 for v in values if v < INFINITY)
        )
        assert reachable.value_at(0) == 1   # just A
        assert reachable.value_at(5) == 4   # A, B, C, D
        assert reachable.value_at(9) == 5   # + E

    def test_pagerank_mass_over_time(self):
        from repro.graph.builder import TemporalGraphBuilder

        b = TemporalGraphBuilder()
        for i in range(4):
            b.add_vertex(f"v{i}", 0, 6)
        for i in range(4):
            b.add_edge(f"v{i}", f"v{(i + 1) % 4}", 0, 6)
        g = b.build()
        result = IntervalCentricEngine(g, TemporalPageRank(g)).run()
        mass = total_over_time(result, sum)
        assert mass.value_at(3) == pytest.approx(1.0)
