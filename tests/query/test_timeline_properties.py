"""Property-based tests: algebraic laws of the timeline operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.query.timeline import Timeline, aggregate, align

TIME = st.integers(min_value=0, max_value=30)


@st.composite
def timelines(draw):
    """A random gappy timeline over [0, 40)."""
    bounds = sorted(draw(st.sets(st.integers(min_value=0, max_value=40),
                                 min_size=2, max_size=10)))
    entries = []
    for lo, hi in zip(bounds, bounds[1:]):
        if draw(st.booleans()):
            entries.append((Interval(lo, hi), draw(st.integers(min_value=0, max_value=5))))
    return Timeline(entries)


def pointwise(tl: Timeline, domain=range(45)):
    return {t: tl.value_at(t) for t in domain if tl.value_at(t) is not None}


@given(timelines())
@settings(max_examples=200, deadline=None)
def test_coalesced_preserves_pointwise(tl):
    assert pointwise(tl.coalesced()) == pointwise(tl)


@given(timelines())
@settings(max_examples=200, deadline=None)
def test_coalesced_is_idempotent_and_minimal(tl):
    once = tl.coalesced()
    assert once.coalesced().entries() == once.entries()
    for (a, va), (b, vb) in zip(once.entries(), once.entries()[1:]):
        assert not (a.end == b.start and va == vb)


@given(timelines())
@settings(max_examples=200, deadline=None)
def test_map_pointwise(tl):
    doubled = tl.map(lambda v: v * 2)
    naive = {t: v * 2 for t, v in pointwise(tl).items()}
    assert pointwise(doubled) == naive


@given(timelines(), st.integers(min_value=0, max_value=35),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=200, deadline=None)
def test_clip_pointwise(tl, start, length):
    window = Interval(start, start + length)
    clipped = tl.clip(window)
    for t in range(45):
        expected = tl.value_at(t) if window.contains_point(t) else None
        assert clipped.value_at(t) == expected


@given(timelines())
@settings(max_examples=200, deadline=None)
def test_filter_pointwise(tl):
    kept = tl.filter(lambda v: v % 2 == 0)
    for t in range(45):
        value = tl.value_at(t)
        expected = value if value is not None and value % 2 == 0 else None
        assert kept.value_at(t) == expected


@given(timelines())
@settings(max_examples=200, deadline=None)
def test_when_matches_filter_coverage(tl):
    intervals = tl.when(lambda v: v >= 3)
    covered = {t for iv in intervals for t in iv.points()}
    expected = {t for t, v in pointwise(tl).items() if v >= 3}
    assert covered == expected


@given(timelines(), timelines())
@settings(max_examples=200, deadline=None)
def test_join_pointwise(a, b):
    joined = a.join(b, lambda x, y: x + y)
    for t in range(45):
        va, vb = a.value_at(t), b.value_at(t)
        expected = va + vb if va is not None and vb is not None else None
        assert joined.value_at(t) == expected


@given(st.lists(timelines(), min_size=1, max_size=4))
@settings(max_examples=150, deadline=None)
def test_aggregate_sum_pointwise(many):
    total = aggregate(many, sum)
    for t in range(45):
        values = [tl.value_at(t) for tl in many if tl.value_at(t) is not None]
        expected = sum(values) if values else None
        assert total.value_at(t) == expected


@given(st.lists(timelines(), min_size=1, max_size=4))
@settings(max_examples=150, deadline=None)
def test_align_partitions_do_not_overlap(many):
    pieces = align(many)
    for (iv_a, _), (iv_b, _) in zip(pieces, pieces[1:]):
        assert iv_a.end <= iv_b.start
