"""Tests for journey enumeration."""

import pytest

from repro.core.interval import Interval
from repro.datasets import transit_graph
from repro.query.paths import find_journeys, iter_journeys


class TestTransitJourneys:
    def test_journeys_A_to_E(self):
        g = transit_graph()
        journeys = find_journeys(g, "A", "E", window=Interval(0, 12), max_legs=3)
        routes = [tuple(leg.edge.eid for leg in j.legs) for j in journeys]
        assert ("AC", "CE") in routes
        assert ("AB", "BE") in routes
        # The A→C→E journey arrives first (6) at cost 7.
        first = journeys[0]
        assert first.arrival == 6
        assert first.cost == 7
        assert first.duration == first.arrival - first.departure

    def test_journeys_respect_time(self):
        g = transit_graph()
        for journey in iter_journeys(g, "A", "E", window=Interval(0, 12), max_legs=4):
            clock = journey.departure
            for leg in journey.legs:
                assert leg.departure >= clock
                assert leg.edge.lifespan.contains_point(leg.departure)
                clock = leg.arrival

    def test_no_journey_to_F(self):
        g = transit_graph()
        assert find_journeys(g, "A", "F", window=Interval(0, 12), max_legs=5) == []

    def test_window_restricts(self):
        g = transit_graph()
        # Only the early A→C→E connection fits before t=7.
        journeys = find_journeys(g, "A", "E", window=Interval(0, 7), max_legs=3)
        assert [tuple(l.edge.eid for l in j.legs) for j in journeys] == [("AC", "CE")]

    def test_max_legs(self):
        g = transit_graph()
        assert find_journeys(g, "A", "E", window=Interval(0, 12), max_legs=1) == []

    def test_max_results_cap(self):
        g = transit_graph()
        journeys = list(iter_journeys(g, "A", "E", window=Interval(0, 12),
                                      max_legs=4, max_results=1))
        assert len(journeys) == 1

    def test_consistency_with_reachability(self):
        """A journey exists iff RH says the target is reachable (within the
        enumerator's hop bound on this small graph)."""
        from repro.algorithms.td.reach import TemporalReachability, is_reachable
        from repro.core.engine import IntervalCentricEngine

        g = transit_graph()
        result = IntervalCentricEngine(g, TemporalReachability("A")).run()
        for vid in "BCDEF":
            journeys = find_journeys(g, "A", vid, window=Interval(0, 12), max_legs=5)
            assert bool(journeys) == is_reachable(result.states[vid]), vid

    def test_cheapest_enumerated_matches_sssp(self):
        """The cheapest enumerated journey to E costs what SSSP reports."""
        from repro.algorithms.td.sssp import TemporalSSSP
        from repro.core.engine import IntervalCentricEngine

        g = transit_graph()
        sssp = IntervalCentricEngine(g, TemporalSSSP("A")).run()
        journeys = find_journeys(g, "A", "E", window=Interval(0, 12), max_legs=4)
        cheapest = min(j.cost for j in journeys)
        assert cheapest == min(v for _, v in sssp.states["E"])

    def test_revisits_flag(self):
        from repro.graph.builder import TemporalGraphBuilder

        b = TemporalGraphBuilder()
        b.add_vertices(["x", "y"], 0, 10)
        b.add_edge("x", "y", 0, 10, eid="xy")
        b.add_edge("y", "x", 0, 10, eid="yx")
        g = b.build()
        without = find_journeys(g, "x", "x", window=Interval(0, 10), max_legs=2)
        assert without == []  # x starts visited
        with_rev = find_journeys(g, "x", "x", window=Interval(0, 10),
                                 max_legs=2, allow_revisits=True)
        assert [tuple(l.edge.eid for l in j.legs) for j in with_rev] == [("xy", "yx")]
