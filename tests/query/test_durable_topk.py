"""Tests for durable top-k queries."""

from repro.core.interval import Interval
from repro.query import Timeline, durable_top_k


def iv(a, b):
    return Interval(a, b)


def test_single_leader():
    timelines = {
        "a": Timeline([(iv(0, 10), 5)]),
        "b": Timeline([(iv(0, 10), 3)]),
        "c": Timeline([(iv(0, 10), 1)]),
    }
    ranked = durable_top_k(timelines, k=1)
    assert ranked == [("a", 10, [iv(0, 10)])]


def test_lead_changes_over_time():
    timelines = {
        "a": Timeline([(iv(0, 4), 9), (iv(4, 10), 1)]),
        "b": Timeline([(iv(0, 4), 2), (iv(4, 10), 8)]),
    }
    ranked = durable_top_k(timelines, k=1)
    assert ranked == [
        ("b", 6, [iv(4, 10)]),
        ("a", 4, [iv(0, 4)]),
    ]


def test_k2_includes_both():
    timelines = {
        "a": Timeline([(iv(0, 6), 9)]),
        "b": Timeline([(iv(0, 6), 5)]),
        "c": Timeline([(iv(0, 6), 1)]),
    }
    ranked = durable_top_k(timelines, k=2)
    assert [(vid, dur) for vid, dur, _ in ranked] == [("a", 6), ("b", 6)]


def test_absent_entities_not_ranked():
    timelines = {
        "early": Timeline([(iv(0, 3), 1)]),
        "late": Timeline([(iv(5, 8), 1)]),
    }
    ranked = durable_top_k(timelines, k=1)
    # Each leads while the other is absent; the gap [3,5) ranks nobody.
    assert sorted((vid, dur) for vid, dur, _ in ranked) == [("early", 3), ("late", 3)]


def test_smallest_score_mode():
    timelines = {
        "cheap": Timeline([(iv(0, 5), 1)]),
        "pricey": Timeline([(iv(0, 5), 9)]),
    }
    ranked = durable_top_k(timelines, k=1, reverse=False)
    assert ranked[0][0] == "cheap"


def test_deterministic_ties():
    timelines = {
        "x": Timeline([(iv(0, 4), 7)]),
        "a": Timeline([(iv(0, 4), 7)]),
    }
    ranked = durable_top_k(timelines, k=1)
    assert ranked[0][0] == "a"  # ties break by id


def test_intervals_coalesce():
    timelines = {
        "a": Timeline([(iv(0, 3), 9), (iv(3, 6), 8)]),  # boundary at 3
        "b": Timeline([(iv(0, 6), 1)]),
    }
    ranked = durable_top_k(timelines, k=1)
    assert ranked[0] == ("a", 6, [iv(0, 6)])


def test_with_pagerank_states():
    """End-to-end: most durably top-ranked vertex of a temporal PR run."""
    from repro.algorithms.ti.pagerank import TemporalPageRank
    from repro.core.engine import IntervalCentricEngine
    from repro.datasets import reddit
    from repro.query import state_timeline

    graph = reddit(scale=0.3)
    result = IntervalCentricEngine(graph, TemporalPageRank(graph)).run()
    timelines = {vid: state_timeline(result, vid) for vid in graph.vertex_ids()}
    ranked = durable_top_k(timelines, k=3)
    assert ranked
    total = graph.time_horizon()
    assert all(0 < duration <= total for _, duration, _ in ranked)
    # The most durable entry stays in the per-instant top-3 for a
    # non-trivial stretch (rank churns on this fast-evolving surrogate).
    assert ranked[0][1] >= total // 4
